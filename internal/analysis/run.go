// Package analysis is the experiment harness: it runs (graph, algorithm,
// workload) triples to the paper's time horizon T = O(log(Kn)/µ) with
// early-stop detection, collects discrepancy metrics and audit results, and
// regenerates Table 1 and the per-theorem experiments E1–E10 of DESIGN.md as
// text tables.
package analysis

import (
	"context"
	"fmt"

	"detlb/internal/core"
	"detlb/internal/graph"
	"detlb/internal/spectral"
	"detlb/internal/topology"
	"detlb/internal/workload"
)

// RunSpec describes one simulation.
type RunSpec struct {
	// Balancing is the graph G+ to run on.
	Balancing *graph.Balancing
	// Algorithm is the balancer under test.
	Algorithm core.Balancer
	// Model, when non-nil, selects the model-agnostic path: the run executes
	// a model built by Model.New(Initial, Workers) — a population-protocol
	// machine, say — instead of a diffusion engine, and Metric maps its state
	// to the scalar the harness tracks. Algorithm must be nil; Balancing is
	// still required (it sizes the run and labels results). Model runs are
	// static: Events, Topology, and Auditors (engine-typed) are rejected
	// through RunResult.Err.
	Model core.ModelBuilder
	// Metric maps model state to the scalar convergence measure (required
	// with Model; ignored on diffusion runs, which always measure the load
	// discrepancy). TargetDiscrepancy, Patience, and the Series/Snapshot
	// discrepancy fields all read this metric's value on model runs, so
	// time-to-target generalizes to time-to-consensus.
	Metric core.Metric
	// Initial is x₁ (not mutated).
	Initial []int64

	// MaxRounds caps the run; 0 means use the paper's T = ⌈16·ln(Kn)/µ⌉.
	MaxRounds int
	// HorizonMultiple scales the default T cap (0 or 1 means 1×). It is
	// ignored when MaxRounds is set: an explicit cap is already the exact
	// horizon the caller asked for.
	HorizonMultiple int
	// Patience stops the run once the running minimum discrepancy has not
	// improved for this many rounds (0 disables early stopping). Periodic
	// orbits (rotor-router) make "unchanged discrepancy" unreliable, so the
	// criterion is no-new-minimum. Each injected shock (see Events) restarts
	// the clock: the pre-shock minimum is not a meaningful improvement
	// baseline while the system is re-absorbing new load.
	Patience int
	// TargetDiscrepancy, when non-nil, is the discrepancy target of the run;
	// 0 is a valid target (perfect balance, the SEND-round/good-s
	// time-to-balance measurement). Use Target to build the pointer inline.
	//
	// On a static run (Events == nil) the run stops at the first round whose
	// discrepancy is ≤ the target — round 0 if the initial vector already
	// meets it. On a dynamic run the target instead defines per-shock
	// recovery (RunResult.Shocks) and the run continues to its horizon.
	TargetDiscrepancy *int64
	// Events, when non-nil, injects load between rounds: after every
	// completed round r (including r = 0, before the first) the schedule's
	// delta is added to the load vector via Engine.ApplyDelta, and every
	// nonzero injection is recorded as a Shock with its recovery metrics.
	// Schedules are pure functions of (round, loads), so dynamic runs keep
	// the engine's bit-identical-across-worker-counts guarantee.
	Events workload.Schedule
	// Topology, when non-nil, injects link/node fault events between rounds:
	// after every completed round r (including r = 0, before the first) the
	// schedule's delta is applied via Engine.ApplyTopologyDelta — before the
	// same round's workload injection, so the network changes first and load
	// then arrives on the changed network — and every effective delta is
	// recorded as a FaultEvent with its recovery metrics. Schedules are pure
	// functions of (round, graph), so faulted runs keep the engine's
	// bit-identical-across-worker-counts guarantee. Like Events, a topology
	// schedule makes the run dynamic: the discrepancy target defines
	// per-fault recovery instead of stopping the run.
	Topology topology.Schedule
	// Workers selects engine parallelism (0/1 = serial).
	Workers int
	// Auditors are attached to the engine.
	Auditors []core.Auditor
	// SampleEvery records the discrepancy every k rounds into Series
	// (0 disables sampling).
	SampleEvery int
}

// Target returns a pointer to d for RunSpec.TargetDiscrepancy, so specs can
// request a target — including 0, perfect balance — inline.
func Target(d int64) *int64 { return &d }

// muZeroTol separates a genuine spectral gap from the power iteration's
// numerical floor (~10⁻¹²–10⁻¹⁵ on a disconnected graph, where λ₂ = 1
// exactly). The smallest real gap in this library's range is the long
// cycle's Θ(1/n²), well above 10⁻¹⁰ for any simulable n.
const muZeroTol = 1e-10

// Point is one sample of the discrepancy trajectory.
type Point struct {
	Round       int
	Discrepancy int64
	// Max and Min are the load extrema behind the discrepancy, so sampled
	// series can be exported as full trace records.
	Max int64
	Min int64
	// Shock marks an injection point: the sample was taken immediately after
	// a Schedule delta was applied (between rounds Round and Round+1), with
	// Injected the net token change. Shock points are recorded whenever
	// sampling is on, regardless of the sampling interval, so JSONL exports
	// carry a marker for every injection.
	Shock    bool
	Injected int64
	// Fault marks a topology-event point: the sample was taken immediately
	// after an ApplyTopologyDelta changed the graph, with FaultChange the
	// event summary and Components the live component count after it. Like
	// shock points, fault points are recorded whenever sampling is on.
	Fault       bool
	FaultChange core.TopologyChange
	Components  int
}

// Shock records one load injection of a dynamic run and the recovery that
// followed it — the self-stabilization view of the paper's bound: after an
// adversarial perturbation, how many rounds until the discrepancy target is
// re-reached.
type Shock struct {
	// Round is the number of completed rounds when the delta was applied
	// (0 = before the first round); round Round+1 is the first to see it.
	Round int
	// Added and Removed are the injected token totals: Σ of the positive
	// deltas and Σ of the negated negative deltas. A pure migration (churn)
	// has Added == Removed.
	Added, Removed int64
	// Discrepancy is the discrepancy immediately after the injection.
	Discrepancy int64
	// PeakDiscrepancy is the maximum discrepancy observed from the injection
	// until recovery (or until the run ended).
	PeakDiscrepancy int64
	// RecoveryRound is the first round after the injection whose
	// discrepancy was ≤ TargetDiscrepancy, or −1 (no target set, or the run
	// ended first). RecoveryRounds is RecoveryRound − Round.
	RecoveryRound  int
	RecoveryRounds int
}

// FaultEvent records one effective topology delta of a faulted run and the
// recovery that followed it — the robustness mirror of Shock. Recovery is
// judged on the *effective* discrepancy (the maximum per-component max−min
// over live components, Engine.EffectiveDiscrepancy): after a partition each
// side can still balance internally even though the global discrepancy is
// pinned by the imbalance across the cut, and that internal re-convergence
// is what graceful degradation means.
type FaultEvent struct {
	// Round is the number of completed rounds when the delta was applied
	// (0 = before the first round); round Round+1 is the first to run on the
	// changed graph.
	Round int
	// FailedLinks/RestoredLinks/FailedNodes/RestoredNodes count the event's
	// effective changes (no-op events are not recorded at all).
	FailedLinks   int
	RestoredLinks int
	FailedNodes   int
	RestoredNodes int
	// Stranded is the load removed with stranded node failures by this
	// event; Redistributed the load moved from failing nodes to neighbors.
	Stranded      int64
	Redistributed int64
	// Components is the number of live components right after the event.
	Components int
	// Gap is the faulted eigenvalue gap of the post-event graph
	// (spectral.FaultedGap); ≈ 0 when the event disconnected it.
	Gap float64
	// Discrepancy is the effective discrepancy immediately after the event;
	// PeakDiscrepancy the maximum effective discrepancy observed from the
	// event until recovery (or until the run ended).
	Discrepancy     int64
	PeakDiscrepancy int64
	// RecoveryRound is the first round after the event whose effective
	// discrepancy was ≤ TargetDiscrepancy, or −1 (no target set, or the run
	// ended first). RecoveryRounds is RecoveryRound − Round.
	RecoveryRound  int
	RecoveryRounds int
	// UnreachableLoad is the load excess no amount of balancing can move off
	// its component at event time: Σ over live components of
	// max(0, total − size·⌈L/N⌉) with L, N the live totals. 0 while the live
	// graph stays connected.
	UnreachableLoad int64
}

// RunResult captures the outcome of a simulation.
type RunResult struct {
	// Rounds actually executed.
	Rounds int
	// Horizon is the round cap that was in force (T by default).
	Horizon int
	// BalancingTime is the paper's T for this instance.
	BalancingTime int
	// Gap is the eigenvalue gap µ of the balancing graph.
	Gap float64
	// InitialDiscrepancy is K.
	InitialDiscrepancy int64
	// FinalDiscrepancy is the discrepancy when the run stopped.
	FinalDiscrepancy int64
	// MinDiscrepancy is the best discrepancy seen at any round.
	MinDiscrepancy int64
	// TargetRound is the first round at which TargetDiscrepancy was reached,
	// or -1.
	TargetRound int
	// StoppedEarly reports whether the patience criterion fired.
	StoppedEarly bool
	// ReachedTarget reports whether TargetDiscrepancy was reached.
	ReachedTarget bool
	// Series holds sampled points when requested.
	Series []Point
	// Shocks holds one record per load injection of a dynamic run (Events),
	// in injection order, each with its recovery metrics.
	Shocks []Shock
	// Faults holds one record per effective topology delta of a faulted run
	// (Topology), in event order, each with its recovery metrics.
	Faults []FaultEvent
	// Metric names the convergence measure the scalar fields carry: "" for
	// diffusion runs (plain load discrepancy, the historical encoding, kept
	// implicit so existing consumers and archives are untouched) or the model
	// metric's name (e.g. "unconverged", "tokens") for model runs, where
	// InitialDiscrepancy, FinalDiscrepancy, MinDiscrepancy, and the Series
	// values are values of that metric.
	Metric string
	// Err is the first audit error, if any.
	Err error
}

// Run executes the spec by draining the streaming primitive (StreamInto) to
// completion. An invalid spec (nil graph or algorithm, wrong vector length, a
// balancer that declines the graph, a schedule addressing a node out of
// range) is reported through RunResult.Err rather than by panicking, so one
// bad spec cannot kill a loop over many. Panics from user-supplied code
// (balancers, schedules, auditors) are contained the same way — the
// containment lives in StreamInto, which this shares with every streaming
// consumer; the sweep path has its own (runSweepSpec).
func Run(spec RunSpec) (res RunResult) {
	for range StreamInto(context.Background(), spec, &res) {
	}
	return res
}

// prepareResult computes the engine-independent result fields (gap, K, the
// paper's T, the horizon in force). ok is false when the spec is too broken
// to build an engine from; res.Err carries the reason.
func prepareResult(spec RunSpec) (res RunResult, ok bool) {
	res = RunResult{TargetRound: -1}
	if spec.Balancing == nil || spec.Algorithm == nil {
		res.Err = fmt.Errorf("analysis: spec needs a balancing graph and an algorithm")
		return res, false
	}
	mu := spectral.Gap(spec.Balancing)
	k := core.Discrepancy(spec.Initial)
	res.Gap = mu
	res.InitialDiscrepancy = k
	if mu > muZeroTol {
		res.BalancingTime = spectral.BalancingTime(spec.Balancing.N(), int(k), mu)
	}
	horizon := spec.MaxRounds
	if horizon == 0 {
		if mu <= muZeroTol {
			// λ₂ = 1 up to the power iteration's numerical floor: the
			// balancing graph is disconnected and the paper's horizon
			// T = O(log(Kn)/µ) is undefined (the raw float would inflate T to
			// ~10¹⁴ rounds). The former code ran a silent 1-round horizon and
			// reported a near-untouched vector as a completed run.
			res.Err = fmt.Errorf("analysis: balancing graph %q has spectral gap µ ≈ 0 (disconnected); T is undefined, set MaxRounds explicitly",
				spec.Balancing.Name())
			return res, false
		}
		horizon = res.BalancingTime
		if m := spec.HorizonMultiple; m > 1 {
			horizon *= m
		}
		if horizon == 0 {
			horizon = 1
		}
	}
	res.Horizon = horizon
	return res, true
}

// runEngineContext drives an engine already holding the spec's initial
// vector through the streaming round loop (see streamEngine), draining it to
// completion. It is the sweep runner's entry point (engines reused across
// specs via Engine.Reset), bit-identical to Run's fresh-engine path because
// a reset engine is equivalent to a fresh one and the round loop is a pure
// function of (spec, initial state). The context gives it round-granularity
// cancellation — the guarantee SweepContext and the serving layer's drain
// are built on.
func runEngineContext(ctx context.Context, spec RunSpec, eng *core.Engine, res RunResult) RunResult {
	for range streamEngine(ctx, spec, eng, &res) {
	}
	return res
}

// RunToTarget is a convenience wrapper measuring the first round at which a
// discrepancy target is hit, with a hard cap. A target of 0 (perfect
// balance) is valid; an input already at or below the target reports
// TargetRound = 0.
func RunToTarget(b *graph.Balancing, algo core.Balancer, x1 []int64, target int64, cap int) RunResult {
	return Run(RunSpec{
		Balancing:         b,
		Algorithm:         algo,
		Initial:           x1,
		MaxRounds:         cap,
		TargetDiscrepancy: &target,
	})
}

// String renders a one-line summary for logs.
func (r RunResult) String() string {
	if r.Metric != "" {
		// Model runs: the discrepancy fields carry the model's metric, and the
		// diffusion-only spectral quantities are meaningless.
		return fmt.Sprintf("rounds=%d/%d %s=%d (min %d, initial %d)",
			r.Rounds, r.Horizon, r.Metric, r.FinalDiscrepancy, r.MinDiscrepancy, r.InitialDiscrepancy)
	}
	return fmt.Sprintf("rounds=%d/%d disc=%d (min %d) K=%d µ=%.4g T=%d",
		r.Rounds, r.Horizon, r.FinalDiscrepancy, r.MinDiscrepancy,
		r.InitialDiscrepancy, r.Gap, r.BalancingTime)
}
