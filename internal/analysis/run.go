// Package analysis is the experiment harness: it runs (graph, algorithm,
// workload) triples to the paper's time horizon T = O(log(Kn)/µ) with
// early-stop detection, collects discrepancy metrics and audit results, and
// regenerates Table 1 and the per-theorem experiments E1–E10 of DESIGN.md as
// text tables.
package analysis

import (
	"fmt"

	"detlb/internal/core"
	"detlb/internal/graph"
	"detlb/internal/spectral"
)

// RunSpec describes one simulation.
type RunSpec struct {
	// Balancing is the graph G+ to run on.
	Balancing *graph.Balancing
	// Algorithm is the balancer under test.
	Algorithm core.Balancer
	// Initial is x₁ (not mutated).
	Initial []int64

	// MaxRounds caps the run; 0 means use the paper's T = ⌈16·ln(Kn)/µ⌉.
	MaxRounds int
	// HorizonMultiple scales the default T cap (0 means 1×).
	HorizonMultiple int
	// Patience stops the run once the running minimum discrepancy has not
	// improved for this many rounds (0 disables early stopping). Periodic
	// orbits (rotor-router) make "unchanged discrepancy" unreliable, so the
	// criterion is no-new-minimum.
	Patience int
	// TargetDiscrepancy, if positive, stops the run as soon as the
	// discrepancy reaches the target (used for time-to-O(d) measurements).
	TargetDiscrepancy int64
	// Workers selects engine parallelism (0/1 = serial).
	Workers int
	// Auditors are attached to the engine.
	Auditors []core.Auditor
	// SampleEvery records the discrepancy every k rounds into Series
	// (0 disables sampling).
	SampleEvery int
}

// Point is one sample of the discrepancy trajectory.
type Point struct {
	Round       int
	Discrepancy int64
	// Max and Min are the load extrema behind the discrepancy, so sampled
	// series can be exported as full trace records.
	Max int64
	Min int64
}

// RunResult captures the outcome of a simulation.
type RunResult struct {
	// Rounds actually executed.
	Rounds int
	// Horizon is the round cap that was in force (T by default).
	Horizon int
	// BalancingTime is the paper's T for this instance.
	BalancingTime int
	// Gap is the eigenvalue gap µ of the balancing graph.
	Gap float64
	// InitialDiscrepancy is K.
	InitialDiscrepancy int64
	// FinalDiscrepancy is the discrepancy when the run stopped.
	FinalDiscrepancy int64
	// MinDiscrepancy is the best discrepancy seen at any round.
	MinDiscrepancy int64
	// TargetRound is the first round at which TargetDiscrepancy was reached,
	// or -1.
	TargetRound int
	// StoppedEarly reports whether the patience criterion fired.
	StoppedEarly bool
	// ReachedTarget reports whether TargetDiscrepancy was reached.
	ReachedTarget bool
	// Series holds sampled points when requested.
	Series []Point
	// Err is the first audit error, if any.
	Err error
}

// Run executes the spec. An invalid spec (nil graph or algorithm, wrong
// vector length, a balancer that declines the graph) is reported through
// RunResult.Err rather than by panicking, so one bad spec cannot kill a
// sweep over many.
func Run(spec RunSpec) RunResult {
	res, ok := prepareResult(spec)
	if !ok {
		return res
	}
	opts := []core.Option{core.WithWorkers(spec.Workers)}
	for _, a := range spec.Auditors {
		opts = append(opts, core.WithAuditor(a))
	}
	eng, err := core.NewEngine(spec.Balancing, spec.Algorithm, spec.Initial, opts...)
	if err != nil {
		res.Err = err
		return res
	}
	defer eng.Close()
	return runEngine(spec, eng, res)
}

// prepareResult computes the engine-independent result fields (gap, K, the
// paper's T, the horizon in force). ok is false when the spec is too broken
// to build an engine from; res.Err carries the reason.
func prepareResult(spec RunSpec) (res RunResult, ok bool) {
	res = RunResult{TargetRound: -1}
	if spec.Balancing == nil || spec.Algorithm == nil {
		res.Err = fmt.Errorf("analysis: spec needs a balancing graph and an algorithm")
		return res, false
	}
	mu := spectral.Gap(spec.Balancing)
	k := core.Discrepancy(spec.Initial)
	res.Gap = mu
	res.InitialDiscrepancy = k
	if mu > 0 {
		res.BalancingTime = spectral.BalancingTime(spec.Balancing.N(), int(k), mu)
	}
	horizon := spec.MaxRounds
	if horizon == 0 {
		horizon = res.BalancingTime
		if m := spec.HorizonMultiple; m > 1 {
			horizon *= m
		}
		if horizon == 0 {
			horizon = 1
		}
	}
	res.Horizon = horizon
	return res, true
}

// runEngine drives an engine already holding the spec's initial vector
// through the round loop. It is shared by Run (fresh engine per call) and
// the sweep runner (engines reused across specs via Engine.Reset); both
// produce bit-identical results because a reset engine is equivalent to a
// fresh one.
func runEngine(spec RunSpec, eng *core.Engine, res RunResult) RunResult {
	best := eng.Discrepancy()
	lastImprovement := 0
	res.MinDiscrepancy = best
	horizon := res.Horizon

	for round := 1; round <= horizon; round++ {
		if err := eng.Step(); err != nil {
			res.Err = err
			res.Rounds = round
			res.FinalDiscrepancy = eng.Discrepancy()
			return res
		}
		lo, hi := core.Extrema(eng.Loads())
		disc := hi - lo
		if spec.SampleEvery > 0 && round%spec.SampleEvery == 0 {
			res.Series = append(res.Series, Point{Round: round, Discrepancy: disc, Max: hi, Min: lo})
		}
		if disc < best {
			best = disc
			lastImprovement = round
		}
		if spec.TargetDiscrepancy > 0 && disc <= spec.TargetDiscrepancy && !res.ReachedTarget {
			res.ReachedTarget = true
			res.TargetRound = round
			res.Rounds = round
			res.FinalDiscrepancy = disc
			res.MinDiscrepancy = best
			return res
		}
		if spec.Patience > 0 && round-lastImprovement >= spec.Patience {
			res.StoppedEarly = true
			res.Rounds = round
			res.FinalDiscrepancy = disc
			res.MinDiscrepancy = best
			return res
		}
	}
	res.Rounds = horizon
	res.FinalDiscrepancy = eng.Discrepancy()
	res.MinDiscrepancy = best
	return res
}

// RunToTarget is a convenience wrapper measuring the first round at which a
// discrepancy target is hit, with a hard cap.
func RunToTarget(b *graph.Balancing, algo core.Balancer, x1 []int64, target int64, cap int) RunResult {
	return Run(RunSpec{
		Balancing:         b,
		Algorithm:         algo,
		Initial:           x1,
		MaxRounds:         cap,
		TargetDiscrepancy: target,
	})
}

// String renders a one-line summary for logs.
func (r RunResult) String() string {
	return fmt.Sprintf("rounds=%d/%d disc=%d (min %d) K=%d µ=%.4g T=%d",
		r.Rounds, r.Horizon, r.FinalDiscrepancy, r.MinDiscrepancy,
		r.InitialDiscrepancy, r.Gap, r.BalancingTime)
}
