// Package analysis is the experiment harness: it runs (graph, algorithm,
// workload) triples to the paper's time horizon T = O(log(Kn)/µ) with
// early-stop detection, collects discrepancy metrics and audit results, and
// regenerates Table 1 and the per-theorem experiments E1–E10 of DESIGN.md as
// text tables.
package analysis

import (
	"fmt"

	"detlb/internal/core"
	"detlb/internal/graph"
	"detlb/internal/spectral"
	"detlb/internal/workload"
)

// RunSpec describes one simulation.
type RunSpec struct {
	// Balancing is the graph G+ to run on.
	Balancing *graph.Balancing
	// Algorithm is the balancer under test.
	Algorithm core.Balancer
	// Initial is x₁ (not mutated).
	Initial []int64

	// MaxRounds caps the run; 0 means use the paper's T = ⌈16·ln(Kn)/µ⌉.
	MaxRounds int
	// HorizonMultiple scales the default T cap (0 or 1 means 1×). It is
	// ignored when MaxRounds is set: an explicit cap is already the exact
	// horizon the caller asked for.
	HorizonMultiple int
	// Patience stops the run once the running minimum discrepancy has not
	// improved for this many rounds (0 disables early stopping). Periodic
	// orbits (rotor-router) make "unchanged discrepancy" unreliable, so the
	// criterion is no-new-minimum. Each injected shock (see Events) restarts
	// the clock: the pre-shock minimum is not a meaningful improvement
	// baseline while the system is re-absorbing new load.
	Patience int
	// TargetDiscrepancy, when non-nil, is the discrepancy target of the run;
	// 0 is a valid target (perfect balance, the SEND-round/good-s
	// time-to-balance measurement). Use Target to build the pointer inline.
	//
	// On a static run (Events == nil) the run stops at the first round whose
	// discrepancy is ≤ the target — round 0 if the initial vector already
	// meets it. On a dynamic run the target instead defines per-shock
	// recovery (RunResult.Shocks) and the run continues to its horizon.
	TargetDiscrepancy *int64
	// Events, when non-nil, injects load between rounds: after every
	// completed round r (including r = 0, before the first) the schedule's
	// delta is added to the load vector via Engine.ApplyDelta, and every
	// nonzero injection is recorded as a Shock with its recovery metrics.
	// Schedules are pure functions of (round, loads), so dynamic runs keep
	// the engine's bit-identical-across-worker-counts guarantee.
	Events workload.Schedule
	// Workers selects engine parallelism (0/1 = serial).
	Workers int
	// Auditors are attached to the engine.
	Auditors []core.Auditor
	// SampleEvery records the discrepancy every k rounds into Series
	// (0 disables sampling).
	SampleEvery int
}

// Target returns a pointer to d for RunSpec.TargetDiscrepancy, so specs can
// request a target — including 0, perfect balance — inline.
func Target(d int64) *int64 { return &d }

// muZeroTol separates a genuine spectral gap from the power iteration's
// numerical floor (~10⁻¹²–10⁻¹⁵ on a disconnected graph, where λ₂ = 1
// exactly). The smallest real gap in this library's range is the long
// cycle's Θ(1/n²), well above 10⁻¹⁰ for any simulable n.
const muZeroTol = 1e-10

// Point is one sample of the discrepancy trajectory.
type Point struct {
	Round       int
	Discrepancy int64
	// Max and Min are the load extrema behind the discrepancy, so sampled
	// series can be exported as full trace records.
	Max int64
	Min int64
	// Shock marks an injection point: the sample was taken immediately after
	// a Schedule delta was applied (between rounds Round and Round+1), with
	// Injected the net token change. Shock points are recorded whenever
	// sampling is on, regardless of the sampling interval, so JSONL exports
	// carry a marker for every injection.
	Shock    bool
	Injected int64
}

// Shock records one load injection of a dynamic run and the recovery that
// followed it — the self-stabilization view of the paper's bound: after an
// adversarial perturbation, how many rounds until the discrepancy target is
// re-reached.
type Shock struct {
	// Round is the number of completed rounds when the delta was applied
	// (0 = before the first round); round Round+1 is the first to see it.
	Round int
	// Added and Removed are the injected token totals: Σ of the positive
	// deltas and Σ of the negated negative deltas. A pure migration (churn)
	// has Added == Removed.
	Added, Removed int64
	// Discrepancy is the discrepancy immediately after the injection.
	Discrepancy int64
	// PeakDiscrepancy is the maximum discrepancy observed from the injection
	// until recovery (or until the run ended).
	PeakDiscrepancy int64
	// RecoveryRound is the first round after the injection whose
	// discrepancy was ≤ TargetDiscrepancy, or −1 (no target set, or the run
	// ended first). RecoveryRounds is RecoveryRound − Round.
	RecoveryRound  int
	RecoveryRounds int
}

// RunResult captures the outcome of a simulation.
type RunResult struct {
	// Rounds actually executed.
	Rounds int
	// Horizon is the round cap that was in force (T by default).
	Horizon int
	// BalancingTime is the paper's T for this instance.
	BalancingTime int
	// Gap is the eigenvalue gap µ of the balancing graph.
	Gap float64
	// InitialDiscrepancy is K.
	InitialDiscrepancy int64
	// FinalDiscrepancy is the discrepancy when the run stopped.
	FinalDiscrepancy int64
	// MinDiscrepancy is the best discrepancy seen at any round.
	MinDiscrepancy int64
	// TargetRound is the first round at which TargetDiscrepancy was reached,
	// or -1.
	TargetRound int
	// StoppedEarly reports whether the patience criterion fired.
	StoppedEarly bool
	// ReachedTarget reports whether TargetDiscrepancy was reached.
	ReachedTarget bool
	// Series holds sampled points when requested.
	Series []Point
	// Shocks holds one record per load injection of a dynamic run (Events),
	// in injection order, each with its recovery metrics.
	Shocks []Shock
	// Err is the first audit error, if any.
	Err error
}

// Run executes the spec. An invalid spec (nil graph or algorithm, wrong
// vector length, a balancer that declines the graph, a schedule addressing a
// node out of range) is reported through RunResult.Err rather than by
// panicking, so one bad spec cannot kill a loop over many. Panics from
// user-supplied code (balancers, schedules, auditors) are contained the same
// way, matching the sweep path.
func Run(spec RunSpec) (res RunResult) {
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("analysis: run panicked: %v", r)
		}
	}()
	res, ok := prepareResult(spec)
	if !ok {
		return res
	}
	opts := []core.Option{core.WithWorkers(spec.Workers)}
	for _, a := range spec.Auditors {
		opts = append(opts, core.WithAuditor(a))
	}
	eng, err := core.NewEngine(spec.Balancing, spec.Algorithm, spec.Initial, opts...)
	if err != nil {
		res.Err = err
		return res
	}
	defer eng.Close()
	return runEngine(spec, eng, res)
}

// prepareResult computes the engine-independent result fields (gap, K, the
// paper's T, the horizon in force). ok is false when the spec is too broken
// to build an engine from; res.Err carries the reason.
func prepareResult(spec RunSpec) (res RunResult, ok bool) {
	res = RunResult{TargetRound: -1}
	if spec.Balancing == nil || spec.Algorithm == nil {
		res.Err = fmt.Errorf("analysis: spec needs a balancing graph and an algorithm")
		return res, false
	}
	mu := spectral.Gap(spec.Balancing)
	k := core.Discrepancy(spec.Initial)
	res.Gap = mu
	res.InitialDiscrepancy = k
	if mu > muZeroTol {
		res.BalancingTime = spectral.BalancingTime(spec.Balancing.N(), int(k), mu)
	}
	horizon := spec.MaxRounds
	if horizon == 0 {
		if mu <= muZeroTol {
			// λ₂ = 1 up to the power iteration's numerical floor: the
			// balancing graph is disconnected and the paper's horizon
			// T = O(log(Kn)/µ) is undefined (the raw float would inflate T to
			// ~10¹⁴ rounds). The former code ran a silent 1-round horizon and
			// reported a near-untouched vector as a completed run.
			res.Err = fmt.Errorf("analysis: balancing graph %q has spectral gap µ ≈ 0 (disconnected); T is undefined, set MaxRounds explicitly",
				spec.Balancing.Name())
			return res, false
		}
		horizon = res.BalancingTime
		if m := spec.HorizonMultiple; m > 1 {
			horizon *= m
		}
		if horizon == 0 {
			horizon = 1
		}
	}
	res.Horizon = horizon
	return res, true
}

// runEngine drives an engine already holding the spec's initial vector
// through the round loop. It is shared by Run (fresh engine per call) and
// the sweep runner (engines reused across specs via Engine.Reset); both
// produce bit-identical results because a reset engine is equivalent to a
// fresh one.
//
// With spec.Events set the loop becomes the dynamic-workload harness: before
// each round the schedule's delta is injected through Engine.ApplyDelta and
// recorded as a Shock, and the discrepancy target — instead of stopping the
// run — defines when each shock has "recovered". All injections are pure
// functions of (round, loads), so the dynamic trajectory inherits the
// engine's bit-identical determinism across worker counts and across the
// Run/Sweep entry points.
func runEngine(spec RunSpec, eng *core.Engine, res RunResult) RunResult {
	target, targetSet := int64(0), false
	if spec.TargetDiscrepancy != nil {
		target, targetSet = *spec.TargetDiscrepancy, true
	}
	disc := eng.Discrepancy()
	best := disc
	res.MinDiscrepancy = best
	res.FinalDiscrepancy = disc
	horizon := res.Horizon

	if targetSet && disc <= target {
		// The initial vector already meets the target: a time-to-target
		// measurement is 0 rounds, not "whenever the trajectory next happens
		// to dip under it".
		res.ReachedTarget = true
		res.TargetRound = 0
		if spec.Events == nil {
			if spec.SampleEvery > 0 {
				// The stopping state joins the series here too, so a sampled
				// spec always produces a (one-point) trajectory.
				lo, hi := core.Extrema(eng.Loads())
				res.Series = append(res.Series, Point{Round: 0, Discrepancy: disc, Max: hi, Min: lo})
			}
			return res
		}
	}

	// patienceBest/lastImprovement drive early stopping; unlike best they
	// restart at every shock. openFrom indexes the first shock still awaiting
	// recovery — recoveries close all open shocks at once, so the open ones
	// always form a suffix of res.Shocks.
	patienceBest := disc
	lastImprovement := 0
	openFrom := 0
	var delta []int64
	if spec.Events != nil {
		delta = make([]int64, spec.Balancing.N())
	}

	closeShocks := func(round int) {
		for i := openFrom; i < len(res.Shocks); i++ {
			res.Shocks[i].RecoveryRound = round
			res.Shocks[i].RecoveryRounds = round - res.Shocks[i].Round
		}
		openFrom = len(res.Shocks)
	}

	// updatePeaks folds disc into every open shock's peak. Open shocks form
	// a suffix with nested observation windows, so their peaks are
	// non-increasing in shock index — walking backward and stopping at the
	// first peak already ≥ disc updates exactly the shocks that need it,
	// keeping targetless runs with per-round schedules (arbitrarily many
	// open shocks) amortized O(1) per round instead of quadratic.
	updatePeaks := func(disc int64) {
		for i := len(res.Shocks) - 1; i >= openFrom; i-- {
			if res.Shocks[i].PeakDiscrepancy >= disc {
				break
			}
			res.Shocks[i].PeakDiscrepancy = disc
		}
	}

	// inject applies the schedule's delta after `completed` rounds; it
	// returns the engine's discrepancy bookkeeping to a consistent state.
	inject := func(completed int) {
		for i := range delta {
			delta[i] = 0
		}
		if !spec.Events.DeltaInto(completed, eng.Loads(), delta) {
			return
		}
		var added, removed int64
		for _, d := range delta {
			if d > 0 {
				added += d
			} else {
				removed -= d
			}
		}
		if added == 0 && removed == 0 {
			return
		}
		if err := eng.ApplyDelta(delta); err != nil {
			// Unreachable by construction (delta has N entries), but a
			// schedule bug must not pass silently.
			panic(err)
		}
		after := eng.Discrepancy()
		// Shocks can overlap: an injection while earlier shocks are still
		// unrecovered is part of their observation window, so the
		// post-injection spike counts toward their peaks too.
		updatePeaks(after)
		res.Shocks = append(res.Shocks, Shock{
			Round: completed, Added: added, Removed: removed,
			Discrepancy: after, PeakDiscrepancy: after,
			RecoveryRound: -1, RecoveryRounds: -1,
		})
		if after < best {
			best = after
			res.MinDiscrepancy = best
		}
		patienceBest = after
		lastImprovement = completed
		if spec.SampleEvery > 0 {
			lo, hi := core.Extrema(eng.Loads())
			res.Series = append(res.Series, Point{
				Round: completed, Discrepancy: hi - lo, Max: hi, Min: lo,
				Shock: true, Injected: added - removed,
			})
		}
		if targetSet && after <= target {
			// The injection itself kept (or restored) the target: the shocks
			// recover instantly, and a first-ever reach between rounds is
			// attributed to the round just completed, mirroring the round
			// loop's bookkeeping.
			closeShocks(completed)
			if !res.ReachedTarget {
				res.ReachedTarget = true
				res.TargetRound = completed
			}
		}
	}

	// finish records the stopping state, appending the final sample when the
	// stop fell between sampling points (the interval loop alone would drop
	// the round that actually stopped the run).
	finish := func(round int, disc, lo, hi int64, sampled bool) RunResult {
		res.Rounds = round
		res.FinalDiscrepancy = disc
		res.MinDiscrepancy = best
		if spec.SampleEvery > 0 && !sampled {
			res.Series = append(res.Series, Point{Round: round, Discrepancy: disc, Max: hi, Min: lo})
		}
		return res
	}

	for round := 1; round <= horizon; round++ {
		if spec.Events != nil {
			inject(round - 1)
		}
		if err := eng.Step(); err != nil {
			// The failed round did execute (state is left advanced for
			// debugging), so its discrepancy joins the bookkeeping like any
			// other stopping round.
			res.Err = err
			lo, hi := core.Extrema(eng.Loads())
			disc := hi - lo
			if disc < best {
				best = disc
			}
			return finish(round, disc, lo, hi, false)
		}
		lo, hi := core.Extrema(eng.Loads())
		disc := hi - lo
		sampled := false
		if spec.SampleEvery > 0 && round%spec.SampleEvery == 0 {
			res.Series = append(res.Series, Point{Round: round, Discrepancy: disc, Max: hi, Min: lo})
			sampled = true
		}
		if disc < best {
			best = disc
		}
		if disc < patienceBest {
			patienceBest = disc
			lastImprovement = round
		}
		updatePeaks(disc)
		if targetSet && disc <= target {
			closeShocks(round)
			if !res.ReachedTarget {
				res.ReachedTarget = true
				res.TargetRound = round
			}
			if spec.Events == nil {
				return finish(round, disc, lo, hi, sampled)
			}
		}
		if spec.Patience > 0 && round-lastImprovement >= spec.Patience {
			res.StoppedEarly = true
			return finish(round, disc, lo, hi, sampled)
		}
	}
	// Horizon exhausted — the normal exit for every dynamic run (the target
	// defines recovery, not termination). The final state joins the series
	// like any other stopping round when it fell mid-interval.
	lo, hi := core.Extrema(eng.Loads())
	sampled := spec.SampleEvery <= 0 || horizon < 1 || horizon%spec.SampleEvery == 0
	return finish(horizon, hi-lo, lo, hi, sampled)
}

// RunToTarget is a convenience wrapper measuring the first round at which a
// discrepancy target is hit, with a hard cap. A target of 0 (perfect
// balance) is valid; an input already at or below the target reports
// TargetRound = 0.
func RunToTarget(b *graph.Balancing, algo core.Balancer, x1 []int64, target int64, cap int) RunResult {
	return Run(RunSpec{
		Balancing:         b,
		Algorithm:         algo,
		Initial:           x1,
		MaxRounds:         cap,
		TargetDiscrepancy: &target,
	})
}

// String renders a one-line summary for logs.
func (r RunResult) String() string {
	return fmt.Sprintf("rounds=%d/%d disc=%d (min %d) K=%d µ=%.4g T=%d",
		r.Rounds, r.Horizon, r.FinalDiscrepancy, r.MinDiscrepancy,
		r.InitialDiscrepancy, r.Gap, r.BalancingTime)
}
