package analysis

import (
	"context"
	"reflect"
	"testing"

	"detlb/internal/balancer"
	"detlb/internal/core"
	"detlb/internal/graph"
	"detlb/internal/topology"
	"detlb/internal/workload"
)

// faultedSpec is the canonical faulted run: a flapping link composed with a
// mid-run partition that later heals, on an expander with a discrepancy
// target — the composed schedule the determinism satellite pins.
func faultedSpec(workers int) RunSpec {
	b := graph.Lazy(graph.RandomRegular(64, 6, 11))
	return RunSpec{
		Balancing: b,
		Algorithm: balancer.NewRotorRouter(),
		Initial:   workload.PointMass(64, 0, 4096),
		MaxRounds: 160,
		Workers:   workers,
		Topology: topology.Compose{
			topology.Flap{Link: [2]int{0, int(b.Graph().Heads()[0])}, From: 10, Period: 12, Duty: 4},
			topology.Partition{Round: 60, Boundary: 32, Heal: 90},
		},
		TargetDiscrepancy: Target(16),
		SampleEvery:       10,
	}
}

func TestFaultedRunRecoveryMetrics(t *testing.T) {
	res := Run(faultedSpec(0))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Faults) == 0 {
		t.Fatal("faulted run recorded no fault events")
	}
	var sawPartition, sawHeal bool
	for i, f := range res.Faults {
		if f.Round == 60 {
			sawPartition = true
			// The cut splits the graph in two, and may additionally isolate a
			// node whose neighbors all sit across the boundary.
			if f.Components < 2 {
				t.Fatalf("partition event has %d components: %+v", f.Components, f)
			}
			if f.Gap > 1e-6 {
				t.Fatalf("partitioned gap %v, want ≈ 0", f.Gap)
			}
		}
		if f.Round == 90 && f.RestoredLinks > 0 {
			sawHeal = true
			if f.Components != 1 {
				t.Fatalf("healed graph has %d components: %+v", f.Components, f)
			}
			if f.Gap <= 1e-6 {
				t.Fatalf("healed gap %v, want > 0", f.Gap)
			}
		}
		if f.PeakDiscrepancy < f.Discrepancy {
			t.Fatalf("fault %d peak below event discrepancy: %+v", i, f)
		}
	}
	if !sawPartition || !sawHeal {
		t.Fatalf("missing partition/heal events: %+v", res.Faults)
	}
	// The last fault window (post-heal flaps on a connected graph) must
	// recover to the target within the horizon.
	last := res.Faults[len(res.Faults)-1]
	if last.RecoveryRound < 0 {
		t.Fatalf("final fault never recovered: %+v", last)
	}
	if last.RecoveryRounds != last.RecoveryRound-last.Round {
		t.Fatalf("recovery arithmetic off: %+v", last)
	}
}

func TestFaultedRunSeriesCarriesFaultMarkers(t *testing.T) {
	res := Run(faultedSpec(0))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	marks := 0
	for _, p := range res.Series {
		if p.Fault {
			marks++
			if !p.FaultChange.Changed() || p.Components < 1 {
				t.Fatalf("fault point without payload: %+v", p)
			}
			smp := p.Sample()
			if smp.Fault == nil || smp.Fault.Components != p.Components {
				t.Fatalf("wire sample lost the fault mark: %+v", smp)
			}
		}
	}
	if marks != len(res.Faults) {
		t.Fatalf("%d fault-marked points for %d fault events", marks, len(res.Faults))
	}
}

func TestFaultedRunDeterministicAcrossWorkersAndEntryPoints(t *testing.T) {
	ref := Run(faultedSpec(0))
	if ref.Err != nil {
		t.Fatal(ref.Err)
	}
	for _, w := range []int{1, 2, 8} {
		got := Run(faultedSpec(w))
		if got.Err != nil {
			t.Fatal(got.Err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("workers=%d result differs from serial:\n%+v\nvs\n%+v", w, got, ref)
		}
	}
	// Sweep (engine reuse via Reset) and Stream must agree bit-identically.
	sw := Sweep([]RunSpec{faultedSpec(0), faultedSpec(0)}, SweepOptions{})
	for i, got := range sw {
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("sweep result %d differs from Run:\n%+v\nvs\n%+v", i, got, ref)
		}
	}
	var streamed RunResult
	rounds := 0
	for range StreamInto(context.Background(), faultedSpec(0), &streamed) {
		rounds++
	}
	if !reflect.DeepEqual(ref, streamed) {
		t.Fatalf("stream result differs from Run:\n%+v\nvs\n%+v", streamed, ref)
	}
	if rounds <= ref.Rounds {
		t.Fatalf("faulted stream yielded %d observations for %d rounds (faults must double-yield)", rounds, ref.Rounds)
	}
}

func TestPermanentPartitionCompletesWithPerComponentMetrics(t *testing.T) {
	// The graceful-degradation acceptance criterion: a partition that never
	// heals must not error out — the run completes its horizon and the fault
	// record carries the per-component view.
	b := graph.Lazy(graph.Cycle(32))
	res := Run(RunSpec{
		Balancing:         b,
		Algorithm:         balancer.NewSendFloor(),
		Initial:           workload.PointMass(32, 0, 2048),
		MaxRounds:         1000,
		Topology:          topology.Partition{Round: 0, Boundary: 16},
		TargetDiscrepancy: Target(64),
	})
	if res.Err != nil {
		t.Fatalf("partitioned run errored: %v", res.Err)
	}
	if res.Rounds != 1000 {
		t.Fatalf("partitioned run stopped at %d/1000", res.Rounds)
	}
	if len(res.Faults) != 1 {
		t.Fatalf("faults: %+v", res.Faults)
	}
	f := res.Faults[0]
	if f.Round != 0 || f.Components != 2 || f.FailedLinks != 2 {
		t.Fatalf("partition event %+v", f)
	}
	// All load started at node 0: the half holding it balances internally to
	// the effective target even though the global discrepancy stays pinned.
	if f.RecoveryRound < 0 {
		t.Fatalf("per-component recovery never detected: %+v", f)
	}
	if f.UnreachableLoad != 2048-16*64 {
		t.Fatalf("unreachable load %d, want %d", f.UnreachableLoad, 2048-16*64)
	}
	if res.FinalDiscrepancy <= 64 {
		t.Fatalf("global discrepancy %d should stay pinned by the cut", res.FinalDiscrepancy)
	}
}

func TestFaultScheduleErrorIsGraceful(t *testing.T) {
	b := graph.Lazy(graph.Cycle(8))
	res := Run(RunSpec{
		Balancing: b,
		Algorithm: balancer.NewSendFloor(),
		Initial:   workload.PointMass(8, 0, 64),
		MaxRounds: 20,
		Topology:  topology.FailNodes{Round: 3, Nodes: []int{99}},
	})
	if res.Err == nil {
		t.Fatal("out-of-range fault node must surface through Err")
	}
	if res.Rounds != 3 {
		t.Fatalf("run should stop at the bad event's round, got %d", res.Rounds)
	}
}

func TestNodeFaultStrandingAndRedistributionPolicies(t *testing.T) {
	// Stranding removes the load from the system; redistribution conserves
	// it. Both run under a conservation auditor, which the DeltaObserver
	// notification must keep satisfied.
	for _, tc := range []struct {
		name         string
		redistribute bool
		wantTotal    int64
	}{
		{"strand", false, 0},
		{"redistribute", true, 1024},
	} {
		b := graph.Lazy(graph.Cycle(16))
		res := Run(RunSpec{
			Balancing: b,
			Algorithm: balancer.NewSendFloor(),
			Initial:   workload.PointMass(16, 5, 1024),
			MaxRounds: 40,
			Topology:  topology.FailNodes{Round: 0, Nodes: []int{5}, Redistribute: tc.redistribute},
			Auditors:  []core.Auditor{core.NewConservationAuditor()},
		})
		if res.Err != nil {
			t.Fatalf("%s: %v", tc.name, res.Err)
		}
		f := res.Faults[0]
		if tc.redistribute && (f.Redistributed != 1024 || f.Stranded != 0) {
			t.Fatalf("%s: %+v", tc.name, f)
		}
		if !tc.redistribute && (f.Stranded != 1024 || f.Redistributed != 0) {
			t.Fatalf("%s: %+v", tc.name, f)
		}
		// Final discrepancy reflects the post-policy totals: stranding
		// leaves an empty system, redistribution a balanced one.
		if tc.wantTotal == 0 && res.FinalDiscrepancy != 0 {
			t.Fatalf("strand: final discrepancy %d", res.FinalDiscrepancy)
		}
	}
}
