package analysis

import (
	"testing"

	"detlb/internal/balancer"
	"detlb/internal/graph"
	"detlb/internal/lowerbound"
	"detlb/internal/workload"
)

func TestDetectOrbitFixedPoint(t *testing.T) {
	// A balanced uniform vector under send-floor is a fixed point: period 1.
	b := graph.Lazy(graph.Cycle(8))
	o, err := DetectOrbit(b, balancer.NewSendFloor(), workload.Uniform(8, 12), 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if o == nil || o.Period != 1 {
		t.Fatalf("expected period-1 orbit, got %+v", o)
	}
	if o.MinDiscrepancy != 0 || o.MaxDiscrepancy != 0 {
		t.Fatalf("balanced orbit has nonzero discrepancy: %+v", o)
	}
}

func TestDetectOrbitTheorem43PeriodTwo(t *testing.T) {
	g := graph.Cycle(17)
	rr, x1, err := lowerbound.RotorAlternatingInstance(g, int64(g.Phi()+3))
	if err != nil {
		t.Fatal(err)
	}
	b := graph.WithLoops(g, 0)
	o, err := DetectOrbit(b, rr, x1, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if o == nil {
		t.Fatal("no orbit found")
	}
	if o.Period != 2 {
		t.Fatalf("Theorem 4.3 orbit must have period 2, got %+v", o)
	}
	if o.MinDiscrepancy < int64(g.Degree()*g.Phi()) {
		t.Fatalf("orbit discrepancy %d below d·φ", o.MinDiscrepancy)
	}
}

func TestDetectOrbitConvergedSendRound(t *testing.T) {
	// After convergence the stateless SEND([x/d⁺]) settles into a short
	// verified cycle (typically a fixed point). Stateful rotor-routers can
	// have full-state periods far longer than any load window, which is
	// exactly why DetectOrbit verifies a full period before reporting.
	b := graph.Lazy(graph.Hypercube(4))
	x1 := workload.PointMass(16, 0, 16*8+3)
	o, err := DetectOrbit(b, balancer.NewSendRound(), x1, 2000, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if o == nil {
		t.Fatal("converged send-round should cycle within the bound")
	}
	if o.MaxDiscrepancy > int64(2*b.Degree()) {
		t.Fatalf("converged orbit discrepancy %d", o.MaxDiscrepancy)
	}
}

func TestDetectOrbitRespectsBound(t *testing.T) {
	// A huge point mass on a big cycle will not become periodic in 5 rounds.
	b := graph.Lazy(graph.Cycle(64))
	o, err := DetectOrbit(b, balancer.NewRotorRouter(), workload.PointMass(64, 0, 100000), 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if o != nil {
		t.Fatalf("unexpected orbit %+v", o)
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	a := []int64{1, 2, 3}
	b := []int64{1, 2, 4}
	if fingerprint(a) == fingerprint(b) {
		t.Fatal("suspicious fingerprint collision on trivially different vectors")
	}
	if fingerprint(a) != fingerprint([]int64{1, 2, 3}) {
		t.Fatal("fingerprint must be deterministic")
	}
}

func TestDetectOrbitSurvivesFailedVerification(t *testing.T) {
	// Regression: rotor-router* on cycle(16) produces load repeats whose
	// verification fails (rotor state differs), forcing the bookkeeping
	// rebuild. Recording absolute round numbers after a rebuild used to
	// index past the rebuilt snapshot slice and panic.
	b := graph.Lazy(graph.Cycle(16))
	o, err := DetectOrbit(b, balancer.NewRotorRouterStar(), workload.PointMass(16, 0, 123), 200, 128)
	if err != nil {
		t.Fatal(err)
	}
	if o != nil && o.Period <= 0 {
		t.Fatalf("degenerate orbit %+v", o)
	}
}
