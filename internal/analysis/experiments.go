package analysis

import (
	"fmt"

	"detlb/internal/balancer"
	"detlb/internal/core"
	"detlb/internal/graph"
	"detlb/internal/workload"
)

// Config tunes the experiment suite.
type Config struct {
	// Quick shrinks instance sizes for test runs; full sizes are used by
	// cmd/lbbench and the benchmarks.
	Quick bool
	// Workers selects engine parallelism.
	Workers int
	// Seed drives every randomized component.
	Seed int64
}

// DefaultConfig is the full-size experiment configuration.
func DefaultConfig() Config { return Config{Seed: 1} }

// table1Graphs returns the graph suite for E1, scaled by cfg.Quick.
func table1Graphs(cfg Config) []*graph.Balancing {
	if cfg.Quick {
		return []*graph.Balancing{
			graph.Lazy(graph.Cycle(32)),
			graph.Lazy(graph.Torus(2, 8)),
			graph.Lazy(graph.Hypercube(6)),
			graph.Lazy(graph.RandomRegular(128, 8, cfg.Seed)),
		}
	}
	return []*graph.Balancing{
		graph.Lazy(graph.Cycle(64)),
		graph.Lazy(graph.Torus(2, 16)),
		graph.Lazy(graph.Hypercube(9)),
		graph.Lazy(graph.RandomRegular(512, 8, cfg.Seed)),
	}
}

// table1Algorithms returns the algorithm suite of Table 1. Algorithms
// carrying per-run state (continuous mimic) are constructed fresh by the
// returned factories.
func table1Algorithms(cfg Config, b *graph.Balancing) []core.Balancer {
	d := b.Degree()
	algos := []core.Balancer{
		balancer.NewBiasedRounding(),
		balancer.NewRandomizedExtra(cfg.Seed),
		balancer.NewRandomizedRounding(cfg.Seed),
		balancer.NewContinuousMimic(),
		balancer.NewBoundedError(),
		balancer.NewSendFloor(),
		balancer.NewSendRound(),
		balancer.NewRotorRouter(),
		balancer.NewRotorRouterStar(),
	}
	if d >= 2 {
		algos = append(algos, balancer.NewGoodS(d/2+1))
	}
	return algos
}

// Table1 regenerates the paper's Table 1 empirically (experiment E1): for
// every algorithm row and every graph in the suite it reports the
// discrepancy after the paper's horizon T, normalized by d, together with
// the audited properties (measured cumulative δ, negative-load rounds).
func Table1(cfg Config) *Table {
	t := &Table{
		Title: "E1: Table 1 — discrepancy after O(T), point-mass workload",
		Header: []string{"algorithm", "graph", "n", "d", "µ", "T", "rounds",
			"disc", "disc/d", "max δ", "neg rounds"},
		Note: "disc = discrepancy at stop; max δ = largest cumulative per-node flow spread (Def 2.1); " +
			"neg rounds = rounds with a negative load (only baselines may have them)",
	}
	for _, b := range table1Graphs(cfg) {
		n := b.N()
		total := int64(8*n) + 7
		x1 := workload.PointMass(n, 0, total)
		for _, algo := range table1Algorithms(cfg, b) {
			fair := core.NewCumulativeFairnessAuditor(-1)
			neg := core.NewNegativeLoadCounter()
			res := Run(RunSpec{
				Balancing: b,
				Algorithm: algo,
				Initial:   x1,
				Patience:  patienceFor(n),
				Workers:   cfg.Workers,
				Auditors:  []core.Auditor{fair, neg},
			})
			if res.Err != nil {
				t.AddRow(algo.Name(), b.Graph().Name(), itoa(n), itoa(b.Degree()),
					fmt.Sprintf("%.3g", res.Gap), itoa(res.BalancingTime), itoa(res.Rounds),
					"ERR", res.Err.Error(), "", "")
				continue
			}
			t.AddRow(
				algo.Name(), b.Graph().Name(), itoa(n), itoa(b.Degree()),
				fmt.Sprintf("%.3g", res.Gap), itoa(res.BalancingTime), itoa(res.Rounds),
				i64toa(res.MinDiscrepancy),
				fmt.Sprintf("%.2f", float64(res.MinDiscrepancy)/float64(b.Degree())),
				i64toa(fair.MaxDelta), itoa(neg.Rounds),
			)
		}
	}
	return t
}

// patienceFor scales the early-stop window with the graph size.
func patienceFor(n int) int {
	p := 16 * n
	if p < 2000 {
		p = 2000
	}
	return p
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

func i64toa(v int64) string { return fmt.Sprintf("%d", v) }
