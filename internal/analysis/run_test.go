package analysis

import (
	"strings"
	"testing"

	"detlb/internal/balancer"
	"detlb/internal/core"
	"detlb/internal/graph"
	"detlb/internal/workload"
)

func TestRunDefaultsToPaperHorizon(t *testing.T) {
	b := graph.Lazy(graph.Hypercube(4))
	x1 := workload.PointMass(16, 0, 163)
	res := Run(RunSpec{Balancing: b, Algorithm: balancer.NewSendFloor(), Initial: x1})
	if res.Horizon != res.BalancingTime {
		t.Fatalf("horizon %d, T %d", res.Horizon, res.BalancingTime)
	}
	if res.Rounds != res.Horizon {
		t.Fatalf("no-patience run should use the full horizon: %d/%d", res.Rounds, res.Horizon)
	}
	if res.InitialDiscrepancy != 163 {
		t.Fatalf("K = %d", res.InitialDiscrepancy)
	}
}

func TestRunPatienceStopsEarly(t *testing.T) {
	b := graph.Lazy(graph.Cycle(16))
	x1 := workload.Uniform(16, 5) // already balanced: min never improves
	res := Run(RunSpec{
		Balancing: b, Algorithm: balancer.NewSendFloor(), Initial: x1,
		MaxRounds: 100000, Patience: 50,
	})
	if !res.StoppedEarly || res.Rounds != 50 {
		t.Fatalf("expected patience stop at 50, got %+v", res)
	}
	if res.FinalDiscrepancy != 0 {
		t.Fatalf("balanced input should stay balanced, disc = %d", res.FinalDiscrepancy)
	}
}

func TestRunTargetStops(t *testing.T) {
	b := graph.Lazy(graph.Hypercube(5))
	x1 := workload.PointMass(32, 0, 3205)
	res := RunToTarget(b, balancer.NewRotorRouterStar(), x1, 12, 100000)
	if !res.ReachedTarget {
		t.Fatalf("target not reached: %+v", res)
	}
	if res.FinalDiscrepancy > 12 {
		t.Fatalf("stopped above target: %d", res.FinalDiscrepancy)
	}
	if res.TargetRound != res.Rounds {
		t.Fatalf("target round bookkeeping: %d vs %d", res.TargetRound, res.Rounds)
	}
}

func TestRunSampling(t *testing.T) {
	b := graph.Lazy(graph.Hypercube(4))
	x1 := workload.PointMass(16, 0, 160)
	res := Run(RunSpec{
		Balancing: b, Algorithm: balancer.NewSendFloor(), Initial: x1,
		MaxRounds: 100, SampleEvery: 10,
	})
	if len(res.Series) != 10 {
		t.Fatalf("expected 10 samples, got %d", len(res.Series))
	}
	if res.Series[0].Round != 10 || res.Series[9].Round != 100 {
		t.Fatalf("sample rounds wrong: %+v", res.Series)
	}
}

// TestRunTargetAlreadyMet: an input at or below the target is a 0-round
// time-to-target measurement, not "whenever the trajectory next dips under".
func TestRunTargetAlreadyMet(t *testing.T) {
	b := graph.Lazy(graph.Hypercube(4))
	x1 := workload.Bimodal(16, 10, 14) // K = 4
	res := RunToTarget(b, balancer.NewSendFloor(), x1, 8, 1000)
	if !res.ReachedTarget || res.TargetRound != 0 {
		t.Fatalf("initial vector meets target 8 (K=4): want TargetRound=0, got %+v", res)
	}
	if res.Rounds != 0 {
		t.Fatalf("a 0-round measurement must not step: %d rounds", res.Rounds)
	}
	if res.FinalDiscrepancy != 4 || res.MinDiscrepancy != 4 {
		t.Fatalf("final/min must report the untouched vector: %+v", res)
	}
	// With sampling on, the 0-round run still produces a one-point series so
	// every sampled spec has a trajectory.
	res = Run(RunSpec{
		Balancing: b, Algorithm: balancer.NewSendFloor(), Initial: x1,
		MaxRounds: 1000, TargetDiscrepancy: Target(8), SampleEvery: 5,
	})
	if len(res.Series) != 1 || res.Series[0].Round != 0 || res.Series[0].Discrepancy != 4 {
		t.Fatalf("0-round run series: %+v", res.Series)
	}
}

// TestRunTargetZeroIsValid: perfect balance (disc = 0) is a requestable
// target — the good-s time-to-balance measurement. The old int64 field made
// 0 indistinguishable from "no target".
func TestRunTargetZeroIsValid(t *testing.T) {
	b := graph.Lazy(graph.Complete(8))
	x1 := workload.Bimodal(8, 10, 18)
	res := RunToTarget(b, balancer.NewGoodS(2), x1, 0, 10000)
	if !res.ReachedTarget {
		t.Fatalf("good-2 on K_8 must reach perfect balance: %+v", res)
	}
	if res.FinalDiscrepancy != 0 || res.TargetRound < 1 {
		t.Fatalf("target-0 bookkeeping: %+v", res)
	}
	// And already-balanced input against target 0 is a 0-round run.
	res = RunToTarget(b, balancer.NewGoodS(2), workload.Uniform(8, 5), 0, 100)
	if !res.ReachedTarget || res.TargetRound != 0 || res.Rounds != 0 {
		t.Fatalf("balanced input, target 0: %+v", res)
	}
}

// TestRunSeriesRecordsStoppingRound: a patience or target stop that falls
// between sampling points must still contribute the final point.
func TestRunSeriesRecordsStoppingRound(t *testing.T) {
	// Patience stop: balanced input never improves, patience 7 stops at
	// round 7, mid-interval for SampleEvery 5.
	b := graph.Lazy(graph.Cycle(16))
	res := Run(RunSpec{
		Balancing: b, Algorithm: balancer.NewSendFloor(),
		Initial:   workload.Uniform(16, 5),
		MaxRounds: 1000, Patience: 7, SampleEvery: 5,
	})
	if !res.StoppedEarly || res.Rounds != 7 {
		t.Fatalf("setup: %+v", res)
	}
	if n := len(res.Series); n != 2 || res.Series[n-1].Round != 7 {
		t.Fatalf("stopping round missing from series: %+v", res.Series)
	}

	// Target stop mid-interval: the final point carries the target-meeting
	// discrepancy.
	bb := graph.Lazy(graph.Hypercube(5))
	res = Run(RunSpec{
		Balancing: bb, Algorithm: balancer.NewRotorRouterStar(),
		Initial:   workload.PointMass(32, 0, 3205),
		MaxRounds: 100000, TargetDiscrepancy: Target(12), SampleEvery: 1000,
	})
	if !res.ReachedTarget {
		t.Fatalf("setup: %+v", res)
	}
	if n := len(res.Series); n == 0 || res.Series[n-1].Round != res.TargetRound {
		t.Fatalf("target round missing from series: rounds=%d series=%+v", res.TargetRound, res.Series)
	}
	if res.Series[len(res.Series)-1].Discrepancy > 12 {
		t.Fatalf("final sample above target: %+v", res.Series)
	}
	// A stop that lands exactly on a sampling point is not double-recorded.
	res = Run(RunSpec{
		Balancing: b, Algorithm: balancer.NewSendFloor(),
		Initial:   workload.Uniform(16, 5),
		MaxRounds: 1000, Patience: 10, SampleEvery: 5,
	})
	if n := len(res.Series); n != 2 || res.Series[0].Round != 5 || res.Series[1].Round != 10 {
		t.Fatalf("on-interval stop double-recorded: %+v", res.Series)
	}
}

// TestRunDisconnectedGraphErrs: µ = 0 with no explicit MaxRounds used to run
// a silent 1-round horizon; it must surface as an error instead.
func TestRunDisconnectedGraphErrs(t *testing.T) {
	// Two disjoint triangles: 2-regular, disconnected.
	g, err := graph.New("two-triangles", [][]int{{1, 2}, {0, 2}, {0, 1}, {4, 5}, {3, 5}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	b := graph.Lazy(g)
	res := Run(RunSpec{
		Balancing: b, Algorithm: balancer.NewSendFloor(),
		Initial: workload.PointMass(6, 0, 60),
	})
	if res.Err == nil {
		t.Fatalf("disconnected graph with default horizon must error, got %+v", res)
	}
	// An explicit MaxRounds is an informed request and still runs.
	res = Run(RunSpec{
		Balancing: b, Algorithm: balancer.NewSendFloor(),
		Initial: workload.PointMass(6, 0, 60), MaxRounds: 10,
	})
	if res.Err != nil || res.Rounds != 10 {
		t.Fatalf("explicit cap on disconnected graph: %+v", res)
	}
}

func TestRunReportsAuditError(t *testing.T) {
	b := graph.Lazy(graph.Cycle(8))
	x1 := workload.Uniform(8, 101)
	res := Run(RunSpec{
		Balancing: b, Algorithm: balancer.NewBiasedRounding(), Initial: x1,
		MaxRounds: 1000,
		Auditors:  []core.Auditor{core.NewCumulativeFairnessAuditor(2)},
	})
	if res.Err == nil {
		t.Fatal("biased rounding must fail a δ=2 audit")
	}
}

func TestRunResultString(t *testing.T) {
	b := graph.Lazy(graph.Cycle(8))
	res := Run(RunSpec{
		Balancing: b, Algorithm: balancer.NewSendFloor(),
		Initial: workload.PointMass(8, 0, 80), MaxRounds: 10,
	})
	s := res.String()
	if !strings.Contains(s, "rounds=10") || !strings.Contains(s, "K=80") {
		t.Fatalf("summary = %q", s)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Note:   "a note",
		Header: []string{"col", "value"},
	}
	tab.AddRow("a", "1")
	tab.AddRowf("b", 2.5)
	out := tab.String()
	for _, want := range []string{"== demo ==", "col", "value", "a", "2.5", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("expected 6 lines, got %d:\n%s", len(lines), out)
	}
}

func TestHorizonMultiple(t *testing.T) {
	b := graph.Lazy(graph.Hypercube(4))
	x1 := workload.PointMass(16, 0, 160)
	r1 := Run(RunSpec{Balancing: b, Algorithm: balancer.NewSendFloor(), Initial: x1})
	r3 := Run(RunSpec{Balancing: b, Algorithm: balancer.NewSendFloor(), Initial: x1, HorizonMultiple: 3})
	if r3.Horizon != 3*r1.Horizon {
		t.Fatalf("horizon multiple: %d vs %d", r3.Horizon, r1.Horizon)
	}
}

func TestRenderMarkdown(t *testing.T) {
	tab := &Table{
		Title:  "md demo",
		Note:   "pipe | note",
		Header: []string{"a", "b"},
	}
	tab.AddRow("1", "x|y")
	tab.AddRow("2") // short row gets padded
	var sb strings.Builder
	if err := tab.RenderMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"## md demo", "| a | b |", "| --- | --- |", `x\|y`, "> pipe | note", "| 2 |  |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestWriteReport(t *testing.T) {
	t1 := &Table{Title: "one", Header: []string{"h"}}
	t1.AddRow("v")
	var sb strings.Builder
	if err := WriteReport(&sb, "suite", []*Table{t1, t1}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "# suite\n") {
		t.Fatalf("report header missing:\n%s", sb.String())
	}
	if strings.Count(sb.String(), "## one") != 2 {
		t.Fatal("expected both tables rendered")
	}
}

// TestRunSeriesRecordsHorizonEnd: a run exhausting its horizon mid-interval
// still records its final state — dynamic runs always exit this way, and
// their JSONL trajectories must end at the run's actual last round.
func TestRunSeriesRecordsHorizonEnd(t *testing.T) {
	b := graph.Lazy(graph.Hypercube(4))
	res := Run(RunSpec{
		Balancing: b, Algorithm: balancer.NewSendFloor(),
		Initial:   workload.PointMass(16, 0, 160),
		MaxRounds: 47, SampleEvery: 10,
	})
	if n := len(res.Series); n != 5 || res.Series[n-1].Round != 47 {
		t.Fatalf("horizon-end round missing from series: %+v", res.Series)
	}
	if res.Series[4].Discrepancy != res.FinalDiscrepancy {
		t.Fatalf("final sample disagrees with FinalDiscrepancy: %+v vs %d", res.Series[4], res.FinalDiscrepancy)
	}
}
