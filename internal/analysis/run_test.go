package analysis

import (
	"strings"
	"testing"

	"detlb/internal/balancer"
	"detlb/internal/core"
	"detlb/internal/graph"
	"detlb/internal/workload"
)

func TestRunDefaultsToPaperHorizon(t *testing.T) {
	b := graph.Lazy(graph.Hypercube(4))
	x1 := workload.PointMass(16, 0, 163)
	res := Run(RunSpec{Balancing: b, Algorithm: balancer.NewSendFloor(), Initial: x1})
	if res.Horizon != res.BalancingTime {
		t.Fatalf("horizon %d, T %d", res.Horizon, res.BalancingTime)
	}
	if res.Rounds != res.Horizon {
		t.Fatalf("no-patience run should use the full horizon: %d/%d", res.Rounds, res.Horizon)
	}
	if res.InitialDiscrepancy != 163 {
		t.Fatalf("K = %d", res.InitialDiscrepancy)
	}
}

func TestRunPatienceStopsEarly(t *testing.T) {
	b := graph.Lazy(graph.Cycle(16))
	x1 := workload.Uniform(16, 5) // already balanced: min never improves
	res := Run(RunSpec{
		Balancing: b, Algorithm: balancer.NewSendFloor(), Initial: x1,
		MaxRounds: 100000, Patience: 50,
	})
	if !res.StoppedEarly || res.Rounds != 50 {
		t.Fatalf("expected patience stop at 50, got %+v", res)
	}
	if res.FinalDiscrepancy != 0 {
		t.Fatalf("balanced input should stay balanced, disc = %d", res.FinalDiscrepancy)
	}
}

func TestRunTargetStops(t *testing.T) {
	b := graph.Lazy(graph.Hypercube(5))
	x1 := workload.PointMass(32, 0, 3205)
	res := RunToTarget(b, balancer.NewRotorRouterStar(), x1, 12, 100000)
	if !res.ReachedTarget {
		t.Fatalf("target not reached: %+v", res)
	}
	if res.FinalDiscrepancy > 12 {
		t.Fatalf("stopped above target: %d", res.FinalDiscrepancy)
	}
	if res.TargetRound != res.Rounds {
		t.Fatalf("target round bookkeeping: %d vs %d", res.TargetRound, res.Rounds)
	}
}

func TestRunSampling(t *testing.T) {
	b := graph.Lazy(graph.Hypercube(4))
	x1 := workload.PointMass(16, 0, 160)
	res := Run(RunSpec{
		Balancing: b, Algorithm: balancer.NewSendFloor(), Initial: x1,
		MaxRounds: 100, SampleEvery: 10,
	})
	if len(res.Series) != 10 {
		t.Fatalf("expected 10 samples, got %d", len(res.Series))
	}
	if res.Series[0].Round != 10 || res.Series[9].Round != 100 {
		t.Fatalf("sample rounds wrong: %+v", res.Series)
	}
}

func TestRunReportsAuditError(t *testing.T) {
	b := graph.Lazy(graph.Cycle(8))
	x1 := workload.Uniform(8, 101)
	res := Run(RunSpec{
		Balancing: b, Algorithm: balancer.NewBiasedRounding(), Initial: x1,
		MaxRounds: 1000,
		Auditors:  []core.Auditor{core.NewCumulativeFairnessAuditor(2)},
	})
	if res.Err == nil {
		t.Fatal("biased rounding must fail a δ=2 audit")
	}
}

func TestRunResultString(t *testing.T) {
	b := graph.Lazy(graph.Cycle(8))
	res := Run(RunSpec{
		Balancing: b, Algorithm: balancer.NewSendFloor(),
		Initial: workload.PointMass(8, 0, 80), MaxRounds: 10,
	})
	s := res.String()
	if !strings.Contains(s, "rounds=10") || !strings.Contains(s, "K=80") {
		t.Fatalf("summary = %q", s)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Note:   "a note",
		Header: []string{"col", "value"},
	}
	tab.AddRow("a", "1")
	tab.AddRowf("b", 2.5)
	out := tab.String()
	for _, want := range []string{"== demo ==", "col", "value", "a", "2.5", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("expected 6 lines, got %d:\n%s", len(lines), out)
	}
}

func TestHorizonMultiple(t *testing.T) {
	b := graph.Lazy(graph.Hypercube(4))
	x1 := workload.PointMass(16, 0, 160)
	r1 := Run(RunSpec{Balancing: b, Algorithm: balancer.NewSendFloor(), Initial: x1})
	r3 := Run(RunSpec{Balancing: b, Algorithm: balancer.NewSendFloor(), Initial: x1, HorizonMultiple: 3})
	if r3.Horizon != 3*r1.Horizon {
		t.Fatalf("horizon multiple: %d vs %d", r3.Horizon, r1.Horizon)
	}
}

func TestRenderMarkdown(t *testing.T) {
	tab := &Table{
		Title:  "md demo",
		Note:   "pipe | note",
		Header: []string{"a", "b"},
	}
	tab.AddRow("1", "x|y")
	tab.AddRow("2") // short row gets padded
	var sb strings.Builder
	if err := tab.RenderMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"## md demo", "| a | b |", "| --- | --- |", `x\|y`, "> pipe | note", "| 2 |  |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestWriteReport(t *testing.T) {
	t1 := &Table{Title: "one", Header: []string{"h"}}
	t1.AddRow("v")
	var sb strings.Builder
	if err := WriteReport(&sb, "suite", []*Table{t1, t1}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "# suite\n") {
		t.Fatalf("report header missing:\n%s", sb.String())
	}
	if strings.Count(sb.String(), "## one") != 2 {
		t.Fatal("expected both tables rendered")
	}
}
