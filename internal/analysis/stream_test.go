package analysis

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"detlb/internal/balancer"
	"detlb/internal/graph"
	"detlb/internal/workload"
)

func streamTestSpec() RunSpec {
	g := graph.Cycle(32)
	return RunSpec{
		Balancing:   graph.Lazy(g),
		Algorithm:   balancer.NewRotorRouter(),
		Initial:     workload.PointMass(32, 0, 320),
		MaxRounds:   60,
		SampleEvery: 1,
	}
}

// Draining StreamInto is Run — same code path, but pin the equivalence so
// the streaming refactor can never drift from the batch API.
func TestStreamIntoDrainedEqualsRun(t *testing.T) {
	spec := streamTestSpec()
	want := Run(spec)
	var got RunResult
	for range StreamInto(context.Background(), spec, &got) {
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("drained StreamInto differs from Run:\n%+v\n%+v", want, got)
	}
}

// The stream yields round 0 (initial state) and then every completed round;
// with SampleEvery=1 each yielded snapshot must agree with the recorded
// series point of that round.
func TestStreamSnapshotsMatchSeries(t *testing.T) {
	spec := streamTestSpec()
	res := Run(spec)

	snaps := map[Round]Snapshot{}
	var rounds []Round
	for r, s := range Stream(context.Background(), spec) {
		snaps[r] = s
		rounds = append(rounds, r)
	}
	if len(rounds) == 0 || rounds[0] != 0 {
		t.Fatalf("stream must open with round 0, got %v", rounds)
	}
	if last := rounds[len(rounds)-1]; last != res.Rounds {
		t.Fatalf("stream ended at round %d, run at %d", last, res.Rounds)
	}
	for _, p := range res.Series {
		s, ok := snaps[p.Round]
		if !ok {
			t.Fatalf("no snapshot for sampled round %d", p.Round)
		}
		if s.Discrepancy != p.Discrepancy || s.Max != p.Max || s.Min != p.Min {
			t.Fatalf("round %d: snapshot %+v != series point %+v", p.Round, s, p)
		}
	}
}

// A dynamic run yields an extra Shock-marked snapshot per injection,
// carrying the net token change.
func TestStreamYieldsShockSnapshots(t *testing.T) {
	spec := streamTestSpec()
	spec.Events = workload.Burst{Round: 10, Node: 3, Amount: 512}
	shocks := 0
	for r, s := range Stream(context.Background(), spec) {
		if s.Shock {
			shocks++
			if r != 10 || s.Injected != 512 {
				t.Fatalf("shock snapshot at round %d: %+v", r, s)
			}
		}
	}
	if shocks != 1 {
		t.Fatalf("expected 1 shock snapshot, got %d", shocks)
	}
}

// Per-round cancellation: once the context is canceled, the stream stops
// before starting another round, and the bookkeeping reports the rounds that
// actually completed plus a cancellation error.
func TestStreamCancellationStopsWithinOneRound(t *testing.T) {
	spec := streamTestSpec()
	spec.MaxRounds = 100000
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var res RunResult
	last := -1
	for r := range StreamInto(ctx, spec, &res) {
		last = r
		if r == 3 {
			cancel()
		}
	}
	if last != 3 {
		t.Fatalf("stream yielded round %d after cancellation at round 3", last)
	}
	if res.Rounds != 3 {
		t.Fatalf("res.Rounds = %d, want 3", res.Rounds)
	}
	if res.Err == nil || res.Err.Error() != "analysis: stream canceled: context canceled" {
		t.Fatalf("res.Err = %v", res.Err)
	}
}

// A canceled-before-start context yields only round 0 and stops.
func TestStreamPreCanceledContext(t *testing.T) {
	spec := streamTestSpec()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var res RunResult
	count := 0
	for range StreamInto(ctx, spec, &res) {
		count++
	}
	if count != 1 {
		t.Fatalf("pre-canceled stream yielded %d snapshots, want 1 (round 0)", count)
	}
	if res.Rounds != 0 || res.Err == nil {
		t.Fatalf("res = %+v", res)
	}
}

// Breaking out of the loop finalizes the bookkeeping at the break round.
func TestStreamBreakFinalizes(t *testing.T) {
	spec := streamTestSpec()
	var res RunResult
	var at Snapshot
	for r, s := range StreamInto(context.Background(), spec, &res) {
		if r == 5 {
			at = s
			break
		}
	}
	if res.Rounds != 5 || res.FinalDiscrepancy != at.Discrepancy {
		t.Fatalf("break bookkeeping: %+v (snapshot %+v)", res, at)
	}
	if res.Err != nil {
		t.Fatalf("a consumer break is not an error: %v", res.Err)
	}
}

// Breaking on the opening round-0 snapshot still produces the one-point
// trajectory a sampled spec promises.
func TestStreamBreakAtRoundZeroKeepsSample(t *testing.T) {
	spec := streamTestSpec()
	spec.SampleEvery = 5
	var res RunResult
	for range StreamInto(context.Background(), spec, &res) {
		break
	}
	if len(res.Series) != 1 || res.Series[0].Round != 0 ||
		res.Series[0].Discrepancy != res.FinalDiscrepancy {
		t.Fatalf("series after round-0 break: %+v (res %+v)", res.Series, res)
	}
}

// Breaking on a Shock snapshot finalizes at the post-injection state: the
// recorded final discrepancy must match what the consumer just saw, and the
// series must not grow a second, contradictory point for the same round.
func TestStreamBreakOnShockFinalizes(t *testing.T) {
	spec := streamTestSpec()
	spec.Events = workload.Burst{Round: 3, Node: 0, Amount: 4096}
	spec.SampleEvery = 5
	var res RunResult
	var at Snapshot
	for _, s := range StreamInto(context.Background(), spec, &res) {
		if s.Shock {
			at = s
			break
		}
	}
	if !at.Shock {
		t.Fatal("no shock snapshot seen")
	}
	if res.Rounds != 3 || res.FinalDiscrepancy != at.Discrepancy {
		t.Fatalf("break-on-shock bookkeeping: %+v (snapshot %+v)", res, at)
	}
	if len(res.Series) != 1 || !res.Series[0].Shock || res.Series[0].Discrepancy != at.Discrepancy {
		t.Fatalf("series after break-on-shock: %+v", res.Series)
	}
}

// Spec errors end the sequence immediately and surface through StreamInto's
// result, exactly like Run.
func TestStreamSpecError(t *testing.T) {
	var res RunResult
	count := 0
	for range StreamInto(context.Background(), RunSpec{}, &res) {
		count++
	}
	if count != 0 || res.Err == nil {
		t.Fatalf("empty spec: %d snapshots, err %v", count, res.Err)
	}
}

// panickySchedule panics when asked for its delta — a stand-in for broken
// user-supplied code.
type panickySchedule struct{}

func (panickySchedule) DeltaInto(round int, loads, dst []int64) bool {
	panic("schedule exploded")
}

// Panics from user-supplied code are contained into res.Err (matching Run);
// panics from the consumer's own loop body still propagate.
func TestStreamContainsUserPanics(t *testing.T) {
	spec := streamTestSpec()
	spec.Events = panickySchedule{}
	var res RunResult
	for range StreamInto(context.Background(), spec, &res) {
	}
	if res.Err == nil || res.Err.Error() != "analysis: run panicked: schedule exploded" {
		t.Fatalf("res.Err = %v", res.Err)
	}

	defer func() {
		if r := recover(); r != "consumer exploded" {
			t.Fatalf("consumer panic was swallowed or rewritten: %v", r)
		}
	}()
	var res2 RunResult
	for range StreamInto(context.Background(), streamTestSpec(), &res2) {
		panic("consumer exploded")
	}
}

// The stream owns its engine: breaking out of a parallel run must release
// the worker pool goroutines.
func TestStreamBreakReleasesEngine(t *testing.T) {
	before := runtime.NumGoroutine()
	spec := streamTestSpec()
	spec.Workers = 4
	for i := 0; i < 5; i++ {
		for r := range Stream(context.Background(), spec) {
			if r == 2 {
				break
			}
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked across broken streams: %d -> %d", before, after)
	}
}
