package analysis

import "detlb/internal/trace"

// This file is the snapshot→wire bridge: one conversion from the harness's
// in-memory observations (Snapshot, Point) to the trace.Sample record that
// every JSONL export writes, so the sweep CLI's trajectory files, the serving
// layer's SSE/NDJSON events, and the archived result documents all speak the
// same wire format and round-trip through trace.ReadJSONL.

// Sample converts the snapshot observed at the given round to its trace wire
// record. A Shock-marked snapshot carries the net injected token count behind
// the Shock pointer — presence is the marker, so a net-0 injection (pure
// churn) still marks, matching the JSONL convention. A Fault-marked snapshot
// carries the event summary behind the Fault pointer the same way.
func (s Snapshot) Sample(round Round) trace.Sample {
	smp := trace.Sample{
		Round:       round,
		Discrepancy: s.Discrepancy,
		Max:         s.Max,
		Min:         s.Min,
	}
	if s.Shock {
		injected := s.Injected
		smp.Shock = &injected
	}
	if s.Fault {
		smp.Fault = &trace.FaultMark{
			FailedLinks:   s.FaultChange.FailedLinks,
			RestoredLinks: s.FaultChange.RestoredLinks,
			FailedNodes:   s.FaultChange.FailedNodes,
			RestoredNodes: s.FaultChange.RestoredNodes,
			Components:    s.Components,
			Stranded:      s.FaultChange.Stranded,
		}
	}
	return smp
}

// Sample converts the sampled trajectory point to its trace wire record,
// identically to Snapshot.Sample — a run's Series and its streamed snapshots
// encode to the same bytes for the same observation.
func (p Point) Sample() trace.Sample {
	return Snapshot{
		Discrepancy: p.Discrepancy,
		Max:         p.Max,
		Min:         p.Min,
		Shock:       p.Shock,
		Injected:    p.Injected,
		Fault:       p.Fault,
		FaultChange: p.FaultChange,
		Components:  p.Components,
	}.Sample(p.Round)
}
