package analysis

import (
	"testing"

	"detlb/internal/balancer"
	"detlb/internal/graph"
	"detlb/internal/workload"
)

func TestTracePhasesCompletes(t *testing.T) {
	b := graph.Lazy(graph.Hypercube(5))
	x1 := workload.PointMass(32, 0, 32*48+5)
	p, err := TracePhases(b, balancer.NewGoodS(2), x1, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Completed() {
		t.Fatalf("phases incomplete: %+v", p)
	}
	if p.C0 > p.C1 {
		t.Fatalf("thresholds inverted: c0=%d c1=%d", p.C0, p.C1)
	}
	// Phases must finish in order: lower thresholds (larger i) cannot empty
	// before higher ones (φ(c) ≥ φ(c') for c ≤ c').
	for i := 1; i < len(p.ZeroRound); i++ {
		if p.ZeroRound[i] < p.ZeroRound[i-1] {
			t.Fatalf("phase order violated: %v", p.ZeroRound)
		}
	}
	if p.FinalBalancedness > p.Bound33 {
		t.Fatalf("balancedness %d above Theorem 3.3 bound %d", p.FinalBalancedness, p.Bound33)
	}
}

func TestTracePhasesBalancedInput(t *testing.T) {
	// Already-balanced input: c1 clamps to c0 and completes immediately.
	b := graph.Lazy(graph.Cycle(16))
	x1 := workload.Uniform(16, 8)
	p, err := TracePhases(b, balancer.NewGoodS(1), x1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Completed() {
		t.Fatalf("balanced input must complete: %+v", p)
	}
	if p.C0 != p.C1 {
		t.Fatalf("expected clamped thresholds, got c0=%d c1=%d", p.C0, p.C1)
	}
}

func TestPhaseExperimentTable(t *testing.T) {
	tab := PhaseExperiment(quickCfg())
	if len(tab.Rows) == 0 {
		t.Fatal("empty table")
	}
	for r := range tab.Rows {
		if got := cell(t, tab, r, "phases done"); got != "true" {
			t.Errorf("row %d: phases not completed: %v", r, tab.Rows[r])
		}
	}
}
