package analysis

import (
	"context"
	"fmt"
	"iter"

	"detlb/internal/core"
	"detlb/internal/spectral"
)

// Round counts completed balancing rounds; it is the key of the streaming
// run sequence (round 0 is the initial state, before the first round).
type Round = int

// Snapshot is one observation of a streaming run: the discrepancy and load
// extrema after a completed round, or immediately after a schedule injection
// (Shock) between rounds.
type Snapshot struct {
	// Discrepancy is max − min load at this observation.
	Discrepancy int64
	// Max and Min are the load extrema behind the discrepancy.
	Max int64
	Min int64
	// Shock marks an injection observation: the snapshot was taken right
	// after a Schedule delta was applied, between the keyed round and the
	// next one, with Injected the net token change. A shocked round yields
	// twice: once for the injection, once for the round that follows it.
	Shock    bool
	Injected int64
	// Fault marks a topology-event observation: the snapshot was taken right
	// after an ApplyTopologyDelta changed the graph, between the keyed round
	// and the next one, with FaultChange the event summary and Components
	// the live component count after it. A faulted round yields twice, like
	// a shocked one (and up to three times when a round carries both a fault
	// and a shock: fault first — the network changes before load arrives).
	Fault       bool
	FaultChange core.TopologyChange
	Components  int
}

// Stream executes the spec as a lazy per-round sequence — the primitive the
// whole harness is expressed over: Run is Stream drained to completion, and
// the sweep runner drains the same core with a reused engine.
//
// The sequence yields the initial state under key 0, then one snapshot per
// completed round (plus one per schedule injection, marked Shock), honoring
// the spec's horizon, target, and patience exactly like Run. Breaking out of
// the loop stops the run at that round and releases the engine; a canceled
// ctx stops it within one round. Each iteration of the returned sequence
// re-executes the spec from the start.
//
// Stream discards the RunResult bookkeeping; use StreamInto to observe
// rounds and still collect the final result (including spec errors, which
// end the sequence immediately and are only visible through the result).
func Stream(ctx context.Context, spec RunSpec) iter.Seq2[Round, Snapshot] {
	return func(yield func(Round, Snapshot) bool) {
		var res RunResult
		StreamInto(ctx, spec, &res)(yield)
	}
}

// StreamInto is Stream writing the run's bookkeeping into res as it goes:
// when the sequence ends — run complete, consumer break, or cancellation —
// res holds exactly what Run would have returned for the rounds executed.
// res is reset at the start of each iteration of the sequence.
//
// Panics from user-supplied code (balancers, schedules, auditors) are
// contained into res.Err, matching Run and the sweep path, so one bad spec
// cannot kill a loop over many streams; a panic in the consumer's own loop
// body is not swallowed — it propagates out of the range statement.
func StreamInto(ctx context.Context, spec RunSpec, res *RunResult) iter.Seq2[Round, Snapshot] {
	return func(yield func(Round, Snapshot) bool) {
		inYield := false
		defer func() {
			if r := recover(); r != nil {
				if inYield {
					// The panic traveled through yield: it is the consumer's,
					// not ours to report.
					panic(r)
				}
				res.Err = fmt.Errorf("analysis: run panicked: %v", r)
			}
		}()
		if spec.Model != nil {
			r, ok := prepareModelResult(spec)
			*res = r
			if !ok {
				return
			}
			m, err := spec.Model.New(spec.Initial, spec.Workers)
			if err != nil {
				res.Err = err
				return
			}
			defer m.Close()
			streamModel(ctx, spec, m, res)(func(round Round, snap Snapshot) bool {
				inYield = true
				ok := yield(round, snap)
				inYield = false
				return ok
			})
			return
		}
		r, ok := prepareResult(spec)
		*res = r
		if !ok {
			return
		}
		opts := []core.Option{core.WithWorkers(spec.Workers)}
		for _, a := range spec.Auditors {
			opts = append(opts, core.WithAuditor(a))
		}
		eng, err := core.NewEngine(spec.Balancing, spec.Algorithm, spec.Initial, opts...)
		if err != nil {
			res.Err = err
			return
		}
		defer eng.Close()
		streamEngine(ctx, spec, eng, res)(func(round Round, snap Snapshot) bool {
			inYield = true
			ok := yield(round, snap)
			inYield = false
			return ok
		})
	}
}

// streamCanceledError is the round loop's cancellation report. It is a
// distinct type so the sweep path can recognize it and relabel in-flight
// cancellations with the sweep's own wording — one user action, one message.
type streamCanceledError struct{ cause error }

func (e *streamCanceledError) Error() string {
	return "analysis: stream canceled: " + e.cause.Error()
}

func (e *streamCanceledError) Unwrap() error { return e.cause }

// streamEngine drives an engine already holding the spec's initial vector
// through the round loop, yielding one snapshot per observation and folding
// the full RunResult bookkeeping into res. It is the single round-loop
// implementation: Run (fresh engine per call) and the sweep runner (engines
// reused across specs via Engine.Reset) both drain it with a background
// context, so their results are bit-identical to each other and to any
// streaming consumer's bookkeeping.
//
// With spec.Events set the loop becomes the dynamic-workload harness: before
// each round the schedule's delta is injected through Engine.ApplyDelta and
// recorded as a Shock, and the discrepancy target — instead of stopping the
// run — defines when each shock has "recovered". All injections are pure
// functions of (round, loads), so the dynamic trajectory inherits the
// engine's bit-identical determinism across worker counts and across the
// Run/Sweep/Stream entry points.
func streamEngine(ctx context.Context, spec RunSpec, eng *core.Engine, res *RunResult) iter.Seq2[Round, Snapshot] {
	return func(yield func(Round, Snapshot) bool) {
		target, targetSet := int64(0), false
		if spec.TargetDiscrepancy != nil {
			target, targetSet = *spec.TargetDiscrepancy, true
		}
		lo, hi := core.Extrema(eng.Loads())
		disc := hi - lo
		best := disc
		res.MinDiscrepancy = best
		res.FinalDiscrepancy = disc
		horizon := res.Horizon

		if targetSet && disc <= target {
			// The initial vector already meets the target: a time-to-target
			// measurement is 0 rounds, not "whenever the trajectory next
			// happens to dip under it". A topology schedule, like a workload
			// one, makes the run dynamic: it continues to its horizon.
			res.ReachedTarget = true
			res.TargetRound = 0
			if spec.Events == nil && spec.Topology == nil {
				if spec.SampleEvery > 0 {
					// The stopping state joins the series here too, so a
					// sampled spec always produces a (one-point) trajectory.
					res.Series = append(res.Series, Point{Round: 0, Discrepancy: disc, Max: hi, Min: lo})
				}
				yield(0, Snapshot{Discrepancy: disc, Max: hi, Min: lo})
				return
			}
		}

		// Round 0 — the state before the first round — opens every stream.
		if !yield(0, Snapshot{Discrepancy: disc, Max: hi, Min: lo}) {
			if spec.SampleEvery > 0 {
				// A consumer break is a stopping round like any other: a
				// sampled spec always produces a (one-point) trajectory.
				res.Series = append(res.Series, Point{Round: 0, Discrepancy: disc, Max: hi, Min: lo})
			}
			return
		}

		// patienceBest/lastImprovement drive early stopping; unlike best they
		// restart at every shock and at every fault. openFrom indexes the
		// first shock still awaiting recovery — recoveries close all open
		// shocks at once, so the open ones always form a suffix of
		// res.Shocks. openFaultFrom mirrors it for fault events.
		patienceBest := disc
		lastImprovement := 0
		openFrom := 0
		openFaultFrom := 0
		var delta []int64
		if spec.Events != nil {
			delta = make([]int64, spec.Balancing.N())
		}

		closeShocks := func(round int) {
			for i := openFrom; i < len(res.Shocks); i++ {
				res.Shocks[i].RecoveryRound = round
				res.Shocks[i].RecoveryRounds = round - res.Shocks[i].Round
			}
			openFrom = len(res.Shocks)
		}

		closeFaults := func(round int) {
			for i := openFaultFrom; i < len(res.Faults); i++ {
				res.Faults[i].RecoveryRound = round
				res.Faults[i].RecoveryRounds = round - res.Faults[i].Round
			}
			openFaultFrom = len(res.Faults)
		}

		// updateFaultPeaks folds the current effective discrepancy into every
		// open fault event's peak, with the same backward-walk amortization as
		// updatePeaks below.
		updateFaultPeaks := func(eff int64) {
			for i := len(res.Faults) - 1; i >= openFaultFrom; i-- {
				if res.Faults[i].PeakDiscrepancy >= eff {
					break
				}
				res.Faults[i].PeakDiscrepancy = eff
			}
		}

		// updatePeaks folds disc into every open shock's peak. Open shocks
		// form a suffix with nested observation windows, so their peaks are
		// non-increasing in shock index — walking backward and stopping at the
		// first peak already ≥ disc updates exactly the shocks that need it,
		// keeping targetless runs with per-round schedules (arbitrarily many
		// open shocks) amortized O(1) per round instead of quadratic.
		updatePeaks := func(disc int64) {
			for i := len(res.Shocks) - 1; i >= openFrom; i-- {
				if res.Shocks[i].PeakDiscrepancy >= disc {
					break
				}
				res.Shocks[i].PeakDiscrepancy = disc
			}
		}

		// finish records the stopping state, appending the final sample when
		// the stop fell between sampling points (the interval loop alone would
		// drop the round that actually stopped the run).
		finish := func(round int, disc, lo, hi int64, sampled bool) {
			res.Rounds = round
			res.FinalDiscrepancy = disc
			res.MinDiscrepancy = best
			if spec.SampleEvery > 0 && !sampled {
				res.Series = append(res.Series, Point{Round: round, Discrepancy: disc, Max: hi, Min: lo})
			}
		}

		// inject applies the schedule's delta after `completed` rounds and
		// yields the post-injection snapshot; it reports whether the stream's
		// consumer wants to continue, finalizing the bookkeeping at the
		// post-injection state when the consumer breaks on the shock.
		inject := func(completed int) bool {
			for i := range delta {
				delta[i] = 0
			}
			if !spec.Events.DeltaInto(completed, eng.Loads(), delta) {
				return true
			}
			var added, removed int64
			for _, d := range delta {
				if d > 0 {
					added += d
				} else {
					removed -= d
				}
			}
			if added == 0 && removed == 0 {
				return true
			}
			if err := eng.ApplyDelta(delta); err != nil {
				// Unreachable by construction (delta has N entries), but a
				// schedule bug must not pass silently.
				panic(err)
			}
			ilo, ihi := core.Extrema(eng.Loads())
			after := ihi - ilo
			// Shocks can overlap: an injection while earlier shocks are still
			// unrecovered is part of their observation window, so the
			// post-injection spike counts toward their peaks too.
			updatePeaks(after)
			res.Shocks = append(res.Shocks, Shock{
				Round: completed, Added: added, Removed: removed,
				Discrepancy: after, PeakDiscrepancy: after,
				RecoveryRound: -1, RecoveryRounds: -1,
			})
			if after < best {
				best = after
				res.MinDiscrepancy = best
			}
			patienceBest = after
			lastImprovement = completed
			if spec.SampleEvery > 0 {
				res.Series = append(res.Series, Point{
					Round: completed, Discrepancy: after, Max: ihi, Min: ilo,
					Shock: true, Injected: added - removed,
				})
			}
			if targetSet && after <= target {
				// The injection itself kept (or restored) the target: the
				// shocks recover instantly, and a first-ever reach between
				// rounds is attributed to the round just completed, mirroring
				// the round loop's bookkeeping.
				closeShocks(completed)
				if !res.ReachedTarget {
					res.ReachedTarget = true
					res.TargetRound = completed
				}
			}
			if !yield(completed, Snapshot{
				Discrepancy: after, Max: ihi, Min: ilo,
				Shock: true, Injected: added - removed,
			}) {
				// The consumer stopped on the shock: the injection is already
				// recorded (Shocks, and a Shock-marked Series point when
				// sampling), so finalize at the post-injection state without
				// appending a second sample for the same round.
				finish(completed, after, ilo, ihi, true)
				return false
			}
			return true
		}

		// last* track the most recently completed round's state so the
		// horizon-exhausted and canceled exits can finalize without an extra
		// pass over the loads.
		lastDisc, lastLo, lastHi := disc, lo, hi
		lastSampled := false

		// injectFault applies the topology schedule's delta after `completed`
		// rounds — before the same round's workload injection — records the
		// FaultEvent, and yields the post-event snapshot. It reports whether
		// the stream should continue; on a schedule error (a generator
		// addressing a node out of range) or a consumer break it finalizes
		// the bookkeeping itself.
		injectFault := func(completed int) bool {
			tdelta, fire := spec.Topology.DeltaAt(completed, spec.Balancing.Graph())
			if !fire || tdelta.Empty() {
				return true
			}
			ch, err := eng.ApplyTopologyDelta(tdelta)
			if err != nil {
				res.Err = fmt.Errorf("analysis: topology schedule at round %d: %w", completed, err)
				finish(completed, lastDisc, lastLo, lastHi, lastSampled)
				return false
			}
			if !ch.Changed() {
				return true
			}
			flo, fhi := core.Extrema(eng.Loads())
			fdisc := fhi - flo
			_, comps := eng.Components()
			eff := eng.EffectiveDiscrepancy()
			// A redistribution (or the next fault of a flap) can spike the
			// global discrepancy inside open shock windows too.
			updatePeaks(fdisc)
			updateFaultPeaks(eff)
			res.Faults = append(res.Faults, FaultEvent{
				Round:       completed,
				FailedLinks: ch.FailedLinks, RestoredLinks: ch.RestoredLinks,
				FailedNodes: ch.FailedNodes, RestoredNodes: ch.RestoredNodes,
				Stranded: ch.Stranded, Redistributed: ch.Redistributed,
				Components:  comps,
				Gap:         spectral.FaultedGap(spec.Balancing, eng.ArcAlive()),
				Discrepancy: eff, PeakDiscrepancy: eff,
				RecoveryRound: -1, RecoveryRounds: -1,
				UnreachableLoad: eng.UnreachableLoad(),
			})
			if fdisc < best {
				best = fdisc
				res.MinDiscrepancy = best
			}
			// A fault restarts the patience clock: the pre-fault minimum is
			// not a meaningful baseline while the system re-converges on the
			// changed graph.
			patienceBest = fdisc
			lastImprovement = completed
			if spec.SampleEvery > 0 {
				res.Series = append(res.Series, Point{
					Round: completed, Discrepancy: fdisc, Max: fhi, Min: flo,
					Fault: true, FaultChange: ch, Components: comps,
				})
			}
			if targetSet && eff <= target {
				// A restore (or a stranding that removed the outliers) can
				// itself re-reach the effective target: the faults recover
				// instantly.
				closeFaults(completed)
			}
			if !yield(completed, Snapshot{
				Discrepancy: fdisc, Max: fhi, Min: flo,
				Fault: true, FaultChange: ch, Components: comps,
			}) {
				finish(completed, fdisc, flo, fhi, true)
				return false
			}
			lastDisc, lastLo, lastHi = fdisc, flo, fhi
			return true
		}

		for round := 1; round <= horizon; round++ {
			if ctx.Err() != nil {
				// Per-round cancellation: the run stops before starting
				// another round, keeping every completed round's bookkeeping.
				res.Err = &streamCanceledError{cause: context.Cause(ctx)}
				// lastSampled alone decides the final-sample append: a cancel
				// before the first round records the round-0 state, matching
				// the consumer-break-at-round-0 path — a sampled spec always
				// produces a trajectory.
				finish(round-1, lastDisc, lastLo, lastHi, lastSampled)
				return
			}
			if spec.Topology != nil && !injectFault(round-1) {
				// injectFault already finalized at the post-event state.
				return
			}
			if spec.Events != nil && !inject(round-1) {
				// inject already finalized at the post-injection state.
				return
			}
			if err := eng.Step(); err != nil {
				// The failed round did execute (state is left advanced for
				// debugging), so its discrepancy joins the bookkeeping like
				// any other stopping round.
				res.Err = err
				slo, shi := core.Extrema(eng.Loads())
				sdisc := shi - slo
				if sdisc < best {
					best = sdisc
				}
				finish(round, sdisc, slo, shi, false)
				yield(round, Snapshot{Discrepancy: sdisc, Max: shi, Min: slo})
				return
			}
			lo, hi := core.Extrema(eng.Loads())
			disc := hi - lo
			sampled := false
			if spec.SampleEvery > 0 && round%spec.SampleEvery == 0 {
				res.Series = append(res.Series, Point{Round: round, Discrepancy: disc, Max: hi, Min: lo})
				sampled = true
			}
			if disc < best {
				best = disc
			}
			if disc < patienceBest {
				patienceBest = disc
				lastImprovement = round
			}
			updatePeaks(disc)
			// Fault recovery is judged on the effective (per-component)
			// discrepancy; computing it is only worth a components lookup
			// while fault events are actually open.
			if len(res.Faults) > openFaultFrom {
				eff := eng.EffectiveDiscrepancy()
				updateFaultPeaks(eff)
				if targetSet && eff <= target {
					closeFaults(round)
				}
			}
			if targetSet && disc <= target {
				closeShocks(round)
				if !res.ReachedTarget {
					res.ReachedTarget = true
					res.TargetRound = round
				}
				if spec.Events == nil && spec.Topology == nil {
					finish(round, disc, lo, hi, sampled)
					yield(round, Snapshot{Discrepancy: disc, Max: hi, Min: lo})
					return
				}
			}
			if spec.Patience > 0 && round-lastImprovement >= spec.Patience {
				res.StoppedEarly = true
				finish(round, disc, lo, hi, sampled)
				yield(round, Snapshot{Discrepancy: disc, Max: hi, Min: lo})
				return
			}
			lastDisc, lastLo, lastHi, lastSampled = disc, lo, hi, sampled
			if round < horizon {
				if !yield(round, Snapshot{Discrepancy: disc, Max: hi, Min: lo}) {
					finish(round, disc, lo, hi, sampled)
					return
				}
			}
		}
		// Horizon exhausted — the normal exit for every dynamic run (the
		// target defines recovery, not termination). The final state joins the
		// series like any other stopping round when it fell mid-interval.
		finish(horizon, lastDisc, lastLo, lastHi, lastSampled || horizon < 1)
		if horizon >= 1 {
			yield(horizon, Snapshot{Discrepancy: lastDisc, Max: lastHi, Min: lastLo})
		}
	}
}
