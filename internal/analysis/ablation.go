package analysis

import (
	"fmt"

	"detlb/internal/balancer"
	"detlb/internal/core"
	"detlb/internal/graph"
	"detlb/internal/workload"
)

// Ablations for the design choices DESIGN.md calls out: how many self-loops
// are actually needed (the paper's open question 1), and whether the
// rotor-router's slot order matters.

// AblationSelfLoops (ABL1) sweeps d° on a fixed graph and workload: the
// paper requires d° ≥ d for claims (i)-(ii) and proves d° = 0 can be
// catastrophic (Thm 4.3); the sweep shows where the transition happens and
// what extra laziness costs in time. Runs are capped at a fixed round budget
// (not T, which grows with laziness) so columns are comparable.
func AblationSelfLoops(cfg Config) *Table {
	g := graph.Cycle(65) // odd cycle: the hard case for few self-loops
	if !cfg.Quick {
		g = graph.Cycle(129)
	}
	n := g.N()
	x1 := workload.PointMass(n, 0, int64(8*n)+5)
	budget := 200 * n
	t := &Table{
		Title: "ABL1: self-loop ablation — d° sweep on an odd cycle (paper's open question 1)",
		Header: []string{"d°", "d⁺", "lazy?", "algorithm", "rounds", "min disc",
			"disc ≤ 2d?"},
		Note: fmt.Sprintf("fixed budget %d rounds; d°=0 is the Theorem 4.3 danger zone "+
			"(adversarial starts lock at Ω(n); benign starts may still balance)", budget),
	}
	for _, loops := range []int{0, 1, 2, 4, 8} {
		b := graph.WithLoops(g, loops)
		res := Run(RunSpec{
			Balancing: b,
			Algorithm: balancer.NewRotorRouter(),
			Initial:   x1,
			MaxRounds: budget,
			Patience:  16 * n,
			Workers:   cfg.Workers,
		})
		ok := "yes"
		if res.MinDiscrepancy > int64(2*g.Degree()) {
			ok = "no"
		}
		t.AddRow(itoa(loops), itoa(g.Degree()+loops),
			fmt.Sprintf("%v", loops >= g.Degree()), "rotor-router",
			itoa(res.Rounds), i64toa(res.MinDiscrepancy), ok)
	}
	return t
}

// AblationRotorOrder (ABL2) compares rotor slot orders: interleaved
// (edge, loop, edge, loop), edges-first and loops-first. Cumulative fairness
// holds for any fixed order, so Theorem 2.3 predicts similar discrepancy —
// the ablation confirms the design choice is free.
func AblationRotorOrder(cfg Config) *Table {
	g := graph.RandomRegular(128, 4, cfg.Seed)
	if !cfg.Quick {
		g = graph.RandomRegular(256, 4, cfg.Seed)
	}
	n := g.N()
	d := g.Degree()
	b := graph.Lazy(g)
	x1 := workload.PointMass(n, 0, int64(8*n)+5)
	t := &Table{
		Title:  "ABL2: rotor slot-order ablation — interleaved vs edges-first vs loops-first",
		Header: []string{"order", "rounds", "min disc", "measured δ"},
		Note:   "any fixed cyclic order is cumulatively 1-fair; discrepancies should be comparable",
	}
	orders := map[string]func() [][]int{
		"interleaved": func() [][]int { return nil }, // default
		"edges-first": func() [][]int {
			return uniformOrders(n, sequence(0, 2*d))
		},
		"loops-first": func() [][]int {
			ord := append(sequence(d, 2*d), sequence(0, d)...)
			return uniformOrders(n, ord)
		},
	}
	for _, name := range []string{"interleaved", "edges-first", "loops-first"} {
		rr := &balancer.RotorRouter{Order: orders[name]()}
		fair := core.NewCumulativeFairnessAuditor(-1)
		res := Run(RunSpec{
			Balancing: b,
			Algorithm: rr,
			Initial:   x1,
			Patience:  16 * n,
			Workers:   cfg.Workers,
			Auditors:  []core.Auditor{fair},
		})
		t.AddRow(name, itoa(res.Rounds), i64toa(res.MinDiscrepancy), i64toa(fair.MaxDelta))
	}
	return t
}

func sequence(lo, hi int) []int {
	s := make([]int, 0, hi-lo)
	for v := lo; v < hi; v++ {
		s = append(s, v)
	}
	return s
}

func uniformOrders(n int, order []int) [][]int {
	out := make([][]int, n)
	for u := range out {
		out[u] = append([]int(nil), order...)
	}
	return out
}
