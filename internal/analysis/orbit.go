package analysis

import (
	"fmt"

	"detlb/internal/core"
	"detlb/internal/graph"
)

// Orbit describes the eventual periodic behaviour of a deterministic
// balancing process. Deterministic balancers on finite token counts are
// eventually periodic in their full state; the load vector's period divides
// the state period and is what the discrepancy bounds care about —
// Theorem 4.3's construction, for instance, is a pure period-2 load orbit,
// while converged rotor-routers typically settle into short cycles.
type Orbit struct {
	// Preperiod is the first round at which the detected cycle begins.
	Preperiod int
	// Period is the length of the load-vector cycle (1 = fixed point).
	Period int
	// MinDiscrepancy and MaxDiscrepancy are taken over one full cycle.
	MinDiscrepancy, MaxDiscrepancy int64
}

// DetectOrbit runs the engine until the load vector revisits a previous
// state, using a hash table over vector fingerprints with verification
// against stored snapshots (no false positives). maxRounds bounds the
// search; snapshots are stored every round, so memory is O(rounds·n).
// Returns nil if no repetition occurs within the bound — the caller should
// warm the engine past convergence first for small orbits.
func DetectOrbit(b *graph.Balancing, algo core.Balancer, x1 []int64, warmup, maxRounds int) (*Orbit, error) {
	eng, err := core.NewEngine(b, algo, x1)
	if err != nil {
		return nil, err
	}
	for i := 0; i < warmup; i++ {
		if err := eng.Step(); err != nil {
			return nil, fmt.Errorf("analysis: orbit warm-up: %w", err)
		}
	}
	seen := make(map[uint64][]int) // fingerprint -> indices into snaps
	var snaps [][]int64
	snapshot := func() []int64 { return append([]int64(nil), eng.Loads()...) }
	// record always files the vector under its index in snaps, so the
	// indices stored in seen stay valid across the rebuilds below (recording
	// absolute round numbers would run past len(snaps) after a rebuild).
	record := func(x []int64) {
		seen[fingerprint(x)] = append(seen[fingerprint(x)], len(snaps))
		snaps = append(snaps, x)
	}
	base := eng.Round() // engine rounds when the current bookkeeping epoch began
	record(snapshot())
	for round := 1; round <= maxRounds; round++ {
		if err := eng.Step(); err != nil {
			return nil, fmt.Errorf("analysis: orbit: %w", err)
		}
		x := snapshot()
		matched := false
		for _, prev := range seen[fingerprint(x)] {
			if !equalVec(snaps[prev], x) {
				continue
			}
			// A load repeat does not by itself prove periodicity for
			// stateful balancers (rotors may differ); verify by replaying
			// one full period and comparing the whole load sequence.
			period := len(snaps) - prev
			ok := true
			for k := 1; k <= period && ok; k++ {
				if err := eng.Step(); err != nil {
					return nil, fmt.Errorf("analysis: orbit verify: %w", err)
				}
				want := snaps[prev+k%period] // k == period wraps to the cycle start
				if !equalVec(eng.Loads(), want) {
					ok = false
				}
			}
			if !ok {
				matched = true // state advanced past the candidate; rebuild from here
				break
			}
			o := &Orbit{Preperiod: base + prev, Period: period}
			o.MinDiscrepancy = core.Discrepancy(snaps[prev])
			o.MaxDiscrepancy = o.MinDiscrepancy
			for t := prev + 1; t < len(snaps); t++ {
				d := core.Discrepancy(snaps[t])
				if d < o.MinDiscrepancy {
					o.MinDiscrepancy = d
				}
				if d > o.MaxDiscrepancy {
					o.MaxDiscrepancy = d
				}
			}
			return o, nil
		}
		if matched {
			// Failed verification consumed extra rounds; restart bookkeeping
			// from the current state to stay sound.
			seen = make(map[uint64][]int)
			snaps = nil
			base = eng.Round()
			record(snapshot())
			continue
		}
		record(x)
	}
	return nil, nil
}

// fingerprint hashes a load vector (FNV-1a over the raw int64s).
func fingerprint(x []int64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, v := range x {
		u := uint64(v)
		for s := 0; s < 64; s += 8 {
			h ^= (u >> s) & 0xff
			h *= prime
		}
	}
	return h
}

func equalVec(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
