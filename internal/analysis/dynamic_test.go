package analysis

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"detlb/internal/balancer"
	"detlb/internal/core"
	"detlb/internal/graph"
	"detlb/internal/workload"
)

// dynamicSpec is the canonical shocked run of the acceptance criteria: a
// burst at round 20 on an expander, with a refill adversary later, measured
// against a discrepancy target.
func dynamicSpec(workers int) RunSpec {
	b := graph.Lazy(graph.RandomRegular(128, 8, 7))
	return RunSpec{
		Balancing: b,
		Algorithm: balancer.NewRotorRouter(),
		Initial:   workload.PointMass(128, 0, 4096),
		MaxRounds: 140,
		Workers:   workers,
		Events: workload.Compose{
			workload.Burst{Round: 20, Node: 64, Amount: 4096},
			workload.Refill{Round: 80, Amount: 2048},
		},
		TargetDiscrepancy: Target(16),
		SampleEvery:       10,
	}
}

// TestDynamicRunRecoveryMetrics checks the per-shock bookkeeping end to end.
func TestDynamicRunRecoveryMetrics(t *testing.T) {
	res := Run(dynamicSpec(0))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Shocks) != 2 {
		t.Fatalf("expected 2 shocks, got %+v", res.Shocks)
	}
	first, second := res.Shocks[0], res.Shocks[1]
	if first.Round != 20 || first.Added != 4096 || first.Removed != 0 {
		t.Fatalf("first shock = %+v", first)
	}
	if second.Round != 80 || second.Added != 2048 {
		t.Fatalf("second shock = %+v", second)
	}
	for i, s := range res.Shocks {
		if s.Discrepancy <= 16 {
			t.Fatalf("shock %d should have broken the target: %+v", i, s)
		}
		if s.PeakDiscrepancy < s.Discrepancy {
			t.Fatalf("shock %d peak below injection discrepancy: %+v", i, s)
		}
		if s.RecoveryRound < 0 {
			t.Fatalf("shock %d never recovered within the horizon: %+v", i, s)
		}
		if s.RecoveryRounds != s.RecoveryRound-s.Round {
			t.Fatalf("shock %d recovery arithmetic: %+v", i, s)
		}
		if s.RecoveryRounds <= 0 {
			t.Fatalf("shock %d recovered instantly despite breaking the target: %+v", i, s)
		}
	}
	// A dynamic run keeps going to its horizon; the target defines recovery,
	// not termination.
	if res.Rounds != 140 {
		t.Fatalf("dynamic run stopped early: %d rounds", res.Rounds)
	}
	if !res.ReachedTarget || res.TargetRound <= 0 || res.TargetRound > 20 {
		t.Fatalf("TargetRound should record the first (pre-shock) reach: %+v", res.TargetRound)
	}
	// Shock markers: one marked sample per injection, regardless of interval.
	marks := 0
	for _, p := range res.Series {
		if p.Shock {
			marks++
			if p.Round != 20 && p.Round != 80 {
				t.Fatalf("marker at unexpected round %d", p.Round)
			}
			if p.Injected == 0 || p.Discrepancy == 0 {
				t.Fatalf("marker incomplete: %+v", p)
			}
		}
	}
	if marks != 2 {
		t.Fatalf("expected 2 shock markers, got %d", marks)
	}
}

// TestDynamicRunDeterministicAcrossWorkers is the acceptance criterion: a
// shocked run is bit-identical at worker counts 0/1/2/8.
func TestDynamicRunDeterministicAcrossWorkers(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	ref := Run(dynamicSpec(0))
	if ref.Err != nil {
		t.Fatal(ref.Err)
	}
	for _, w := range []int{1, 2, 8} {
		got := Run(dynamicSpec(w))
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("workers=%d: dynamic run diverged:\n got %+v\nwant %+v", w, got, ref)
		}
	}
}

// TestDynamicSweepMatchesSerialRun is the other half of the acceptance
// criterion: Sweep's reused engines produce the same shocked results as a
// serial Run loop, at every sweep worker count.
func TestDynamicSweepMatchesSerialRun(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	b := graph.Lazy(graph.RandomRegular(96, 8, 9))
	rotor := balancer.NewRotorRouter()
	var specs []RunSpec
	for i := 0; i < 8; i++ {
		specs = append(specs, RunSpec{
			Balancing: b,
			Algorithm: rotor,
			Initial:   workload.PointMass(96, i, int64(1024*(i+1))),
			MaxRounds: 90,
			Events: workload.Compose{
				workload.Burst{Round: 15, Node: (i * 13) % 96, Amount: 2048},
				workload.Churn{Every: 10, Amount: 256, Seed: uint64(i)},
			},
			TargetDiscrepancy: Target(24),
			SampleEvery:       7,
		})
	}
	ref := make([]RunResult, len(specs))
	for i, spec := range specs {
		ref[i] = Run(spec)
		if ref[i].Err != nil {
			t.Fatalf("spec %d: %v", i, ref[i].Err)
		}
		if len(ref[i].Shocks) == 0 {
			t.Fatalf("spec %d: no shocks recorded", i)
		}
	}
	for _, workers := range []int{1, 4} {
		got := Sweep(specs, SweepOptions{Workers: workers})
		for i := range ref {
			if !reflect.DeepEqual(ref[i], got[i]) {
				t.Fatalf("sweep workers=%d spec %d diverged:\n got %+v\nwant %+v",
					workers, i, got[i], ref[i])
			}
		}
	}
}

// TestDynamicRunOverlappingShockPeaks: a second injection while an earlier
// shock is still unrecovered counts toward the earlier shock's peak — its
// observation window is "injection until recovery", spikes included.
func TestDynamicRunOverlappingShockPeaks(t *testing.T) {
	// Slow graph (cycle) so the first burst is still unrecovered when the
	// second, much larger one lands.
	b := graph.Lazy(graph.Cycle(64))
	res := Run(RunSpec{
		Balancing: b,
		Algorithm: balancer.NewSendFloor(),
		Initial:   workload.Uniform(64, 100),
		MaxRounds: 40,
		Events: workload.Compose{
			workload.Burst{Round: 5, Node: 0, Amount: 1000},
			workload.Burst{Round: 10, Node: 32, Amount: 100000},
		},
		TargetDiscrepancy: Target(8),
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Shocks) != 2 {
		t.Fatalf("expected 2 shocks: %+v", res.Shocks)
	}
	first, second := res.Shocks[0], res.Shocks[1]
	if first.RecoveryRound >= 0 && first.RecoveryRound <= 10 {
		t.Fatalf("setup: first shock recovered before the second landed: %+v", first)
	}
	if first.PeakDiscrepancy < second.Discrepancy {
		t.Fatalf("first shock's peak must include the overlapping spike: first %+v, second %+v", first, second)
	}
}

// TestDynamicRunDrainRemovesLoad: a drain schedule reduces the total and
// records Removed.
func TestDynamicRunDrainRemovesLoad(t *testing.T) {
	b := graph.Lazy(graph.Hypercube(4))
	res := Run(RunSpec{
		Balancing: b,
		Algorithm: balancer.NewSendFloor(),
		Initial:   workload.Uniform(16, 100),
		MaxRounds: 20,
		Events:    workload.Drain{From: 5, To: 7, PerNode: 10},
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Shocks) != 3 {
		t.Fatalf("expected 3 drain shocks, got %d", len(res.Shocks))
	}
	for _, s := range res.Shocks {
		if s.Added != 0 || s.Removed != 160 {
			t.Fatalf("drain shock = %+v", s)
		}
		if s.RecoveryRound != -1 {
			t.Fatalf("no target set: recovery must be unmeasured, got %+v", s)
		}
	}
	if res.FinalDiscrepancy != 0 {
		t.Fatalf("uniform drain must keep balance, disc = %d", res.FinalDiscrepancy)
	}
}

// TestDynamicRunPatienceRestartsAtShock: without the restart, the pre-shock
// minimum would trip patience in the middle of recovery.
func TestDynamicRunPatienceRestartsAtShock(t *testing.T) {
	b := graph.Lazy(graph.RandomRegular(64, 8, 3))
	spec := RunSpec{
		Balancing: b,
		Algorithm: balancer.NewSendFloor(),
		Initial:   workload.PointMass(64, 0, 2048),
		MaxRounds: 400,
		Patience:  40,
		Events:    workload.Burst{Round: 30, Node: 32, Amount: 8192},
	}
	res := Run(spec)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Shocks) != 1 {
		t.Fatalf("burst at round 30 must land before any stop: %+v", res)
	}
	// The shock restarts the patience clock, so any patience stop must come
	// at least Patience rounds after the injection — without the restart the
	// stale pre-shock minimum would fire mid-recovery.
	if res.StoppedEarly && res.Rounds < 30+40 {
		t.Fatalf("patience fired during recovery: %+v", res)
	}
}

// TestDynamicRunTargetReachedByInjection: a target first met by a removal
// injection (between rounds) sets ReachedTarget/TargetRound the same way a
// post-round reach would — attributed to the round just completed.
func TestDynamicRunTargetReachedByInjection(t *testing.T) {
	b := graph.Lazy(graph.Cycle(16))
	res := Run(RunSpec{
		Balancing:         b,
		Algorithm:         balancer.NewSendFloor(),
		Initial:           workload.PointMass(16, 0, 30),
		MaxRounds:         2,
		Events:            workload.Burst{Round: 0, Node: 0, Amount: -25},
		TargetDiscrepancy: Target(10),
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Shocks) != 1 || res.Shocks[0].RecoveryRounds != 0 {
		t.Fatalf("removal shock should recover instantly: %+v", res.Shocks)
	}
	if !res.ReachedTarget || res.TargetRound != 0 {
		t.Fatalf("injection-reached target must be recorded: %+v", res)
	}
}

// TestRunContainsSchedulePanic: a schedule addressing a node out of range
// must surface through RunResult.Err, not crash the caller — Run's no-panic
// contract extends to user-supplied schedules.
func TestRunContainsSchedulePanic(t *testing.T) {
	b := graph.Lazy(graph.Hypercube(4))
	res := Run(RunSpec{
		Balancing: b,
		Algorithm: balancer.NewSendFloor(),
		Initial:   workload.PointMass(16, 0, 160),
		MaxRounds: 10,
		Events:    workload.Burst{Round: 2, Node: 99, Amount: 1},
	})
	if res.Err == nil {
		t.Fatal("out-of-range schedule node must surface through Err")
	}
}

// TestPotentialTrackerIgnoresInjections: an injected load jump is the
// adversary's doing, not a Lemma 3.5/3.7 violation by the balancer.
func TestPotentialTrackerIgnoresInjections(t *testing.T) {
	b := graph.Lazy(graph.RandomRegular(32, 6, 2))
	tracker := core.NewPotentialTracker(2, 0, 8)
	res := Run(RunSpec{
		Balancing: b,
		Algorithm: balancer.NewGoodS(2),
		Initial:   workload.PointMass(32, 0, 1024),
		MaxRounds: 60,
		Events:    workload.Burst{Round: 20, Node: 16, Amount: 4096},
		Auditors:  []core.Auditor{tracker},
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Shocks) != 1 {
		t.Fatalf("expected the burst to land: %+v", res.Shocks)
	}
	if tracker.Violations != 0 {
		t.Fatalf("injection counted as %d potential violations", tracker.Violations)
	}
}

// TestSweepContextCancel: canceled sweeps mark unstarted specs with the
// cancellation cause and still return a full result slice.
func TestSweepContextCancel(t *testing.T) {
	b := graph.Lazy(graph.RandomRegular(64, 8, 5))
	var specs []RunSpec
	for i := 0; i < 20; i++ {
		specs = append(specs, RunSpec{
			Balancing: b,
			Algorithm: balancer.NewSendFloor(),
			Initial:   workload.PointMass(64, i%64, 1024),
			MaxRounds: 50,
		})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the sweep starts: every spec short-circuits
	results := SweepContext(ctx, specs, SweepOptions{Workers: 2})
	if len(results) != len(specs) {
		t.Fatalf("%d results for %d specs", len(results), len(specs))
	}
	for i, res := range results {
		if res.Err == nil {
			t.Fatalf("spec %d ran despite canceled context", i)
		}
	}
}

// TestSweepProgress: the callback sees every spec exactly once, with a
// monotone done counter ending at the total.
func TestSweepProgress(t *testing.T) {
	b := graph.Lazy(graph.Hypercube(4))
	var specs []RunSpec
	for i := 0; i < 12; i++ {
		specs = append(specs, RunSpec{
			Balancing: b,
			Algorithm: balancer.NewSendFloor(),
			Initial:   workload.PointMass(16, i%16, 160),
			MaxRounds: 10,
		})
	}
	var calls []int
	results := SweepContext(context.Background(), specs, SweepOptions{
		Workers: 3,
		Progress: func(done, total int) {
			if total != 12 {
				t.Errorf("total = %d", total)
			}
			calls = append(calls, done) // serialized by the harness
		},
	})
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("spec %d: %v", i, res.Err)
		}
	}
	if len(calls) != 12 {
		t.Fatalf("progress called %d times", len(calls))
	}
	for i, done := range calls {
		if done != i+1 {
			t.Fatalf("done sequence not monotone: %v", calls)
		}
	}
}
