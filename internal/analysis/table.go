package analysis

import (
	"fmt"
	"io"
	"strings"
)

// Table is a minimal text table used for every experiment report, rendered
// in a fixed-width layout that diffs cleanly in EXPERIMENTS.md.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row, applying fmt.Sprint to each value.
func (t *Table) AddRowf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.3g", x)
		default:
			cells[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		fmt.Fprintf(w, "note: %s\n", t.Note)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// String renders to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}
