package analysis

import (
	"strconv"
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Quick: true, Seed: 1} }

// cell fetches a named column from a table row.
func cell(t *testing.T, tab *Table, row int, col string) string {
	t.Helper()
	for i, h := range tab.Header {
		if h == col {
			return tab.Rows[row][i]
		}
	}
	t.Fatalf("no column %q in %v", col, tab.Header)
	return ""
}

func cellFloat(t *testing.T, tab *Table, row int, col string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, tab, row, col), 64)
	if err != nil {
		t.Fatalf("column %q row %d: %v", col, row, err)
	}
	return v
}

func TestTable1Shape(t *testing.T) {
	tab := Table1(quickCfg())
	if len(tab.Rows) != 4*10 {
		t.Fatalf("expected 40 rows (4 graphs × 10 algorithms), got %d", len(tab.Rows))
	}
	for r := range tab.Rows {
		if got := cell(t, tab, r, "disc"); got == "ERR" {
			t.Fatalf("row %d errored: %v", r, tab.Rows[r])
		}
		// Every deterministic fair balancer must land at O(d): disc/d ≤ 8.
		name := cell(t, tab, r, "algorithm")
		switch name {
		case "send-floor", "send-round", "rotor-router", "rotor-router*":
			if ratio := cellFloat(t, tab, r, "disc/d"); ratio > 8 {
				t.Errorf("%s on %s: disc/d = %v", name, cell(t, tab, r, "graph"), ratio)
			}
		}
		// Negative loads only ever on the two baselines that admit them.
		if neg := cell(t, tab, r, "neg rounds"); neg != "0" {
			if name != "randomized-rounding" && name != "continuous-mimic" && name != "bounded-error" {
				t.Errorf("%s reported negative loads", name)
			}
		}
	}
}

func TestTable1FairnessColumns(t *testing.T) {
	tab := Table1(quickCfg())
	for r := range tab.Rows {
		name := cell(t, tab, r, "algorithm")
		delta, err := strconv.ParseInt(cell(t, tab, r, "max δ"), 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		switch name {
		case "send-floor", "send-round":
			if delta != 0 {
				t.Errorf("%s: δ = %d, want 0", name, delta)
			}
		case "rotor-router", "rotor-router*":
			if delta > 1 {
				t.Errorf("%s: δ = %d, want ≤ 1", name, delta)
			}
		case "biased-rounding":
			if delta < 10 {
				t.Errorf("biased rounding: δ = %d, expected growth", delta)
			}
		}
	}
}

func TestThm23ExpanderWithinBound(t *testing.T) {
	tab := Thm23Expander(quickCfg())
	for r := range tab.Rows {
		if ratio := cellFloat(t, tab, r, "disc/bound"); ratio > 1 {
			t.Errorf("row %d: measured discrepancy exceeds Theorem 2.3(i) bound (ratio %v)", r, ratio)
		}
	}
}

func TestThm23CycleWithinBound(t *testing.T) {
	tab := Thm23Cycle(quickCfg())
	for r := range tab.Rows {
		if ratio := cellFloat(t, tab, r, "disc/bound"); ratio > 1 {
			t.Errorf("row %d: measured discrepancy exceeds Theorem 2.3(ii) bound (ratio %v)", r, ratio)
		}
	}
}

func TestThm33ReachesTarget(t *testing.T) {
	tab := Thm33GoodS(quickCfg())
	for r := range tab.Rows {
		if got := cell(t, tab, r, "rounds-to-target"); got == "not reached" {
			t.Errorf("%s never reached the O(d) target", cell(t, tab, r, "algorithm"))
		}
		disc, err := strconv.ParseInt(cell(t, tab, r, "disc@stop"), 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		bound, err := strconv.ParseInt(cell(t, tab, r, "bound33"), 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		if disc > bound {
			t.Errorf("%s: discrepancy %d above Theorem 3.3 bound %d",
				cell(t, tab, r, "algorithm"), disc, bound)
		}
	}
}

func TestThm41Steady(t *testing.T) {
	tab := Thm41(quickCfg())
	for r := range tab.Rows {
		if cell(t, tab, r, "steady") != "true" {
			t.Errorf("row %d not steady", r)
		}
		if cell(t, tab, r, "round-fair") != "yes" {
			t.Errorf("row %d not round-fair: %s", r, cell(t, tab, r, "round-fair"))
		}
		if ratio := cellFloat(t, tab, r, "disc/(d·diam)"); ratio < 1 {
			t.Errorf("row %d: discrepancy below d·diam (ratio %v)", r, ratio)
		}
	}
}

func TestThm42PinnedAtHalfD(t *testing.T) {
	tab := Thm42(quickCfg())
	for r := range tab.Rows {
		if strings.HasPrefix(cell(t, tab, r, "disc"), "ERR") {
			t.Fatalf("row %d errored", r)
		}
		if ratio := cellFloat(t, tab, r, "disc/d"); ratio < 0.3 {
			t.Errorf("row %d: disc/d = %v, want ≈ 1/2", r, ratio)
		}
	}
}

func TestThm43PeriodTwo(t *testing.T) {
	tab := Thm43(quickCfg())
	for r := range tab.Rows {
		if cell(t, tab, r, "period2") != "true" {
			t.Errorf("row %d: not period-2: %v", r, tab.Rows[r])
		}
		if ratio := cellFloat(t, tab, r, "disc/(d·φ)"); ratio < 1 {
			t.Errorf("row %d: min discrepancy below d·φ (ratio %v)", r, ratio)
		}
	}
}

func TestFairnessAuditMatchesPaper(t *testing.T) {
	tab := FairnessAudit(quickCfg())
	for r := range tab.Rows {
		name := cell(t, tab, r, "algorithm")
		measured := cell(t, tab, r, "measured δ")
		if strings.Contains(measured, "FAIL") {
			t.Fatalf("%s failed its audits: %s", name, measured)
		}
		switch name {
		case "send-floor", "send-round":
			if measured != "0" {
				t.Errorf("%s: δ = %s", name, measured)
			}
		case "rotor-router", "rotor-router*":
			if measured != "0" && measured != "1" {
				t.Errorf("%s: δ = %s", name, measured)
			}
		}
	}
}

func TestPotentialDropNoViolations(t *testing.T) {
	tab := PotentialDrop(quickCfg())
	for r := range tab.Rows {
		if got := cell(t, tab, r, "violations"); got != "0" {
			t.Errorf("row %d: %s potential violations", r, got)
		}
		if got := cell(t, tab, r, "φ(c0) end"); got != "0" {
			t.Errorf("row %d: φ(c0) not drained: %s", r, got)
		}
	}
}

func TestExpanderHeadlineFairBeatsBiased(t *testing.T) {
	tab := ExpanderHeadline(quickCfg())
	for r := range tab.Rows {
		if ratio := cellFloat(t, tab, r, "biased/fair"); ratio < 1 {
			t.Errorf("n=%s: biased rounding beat the fair balancer (ratio %v)",
				cell(t, tab, r, "n"), ratio)
		}
	}
}

func TestMatchingModelReachesConstant(t *testing.T) {
	tab := MatchingModel(quickCfg())
	for r := range tab.Rows {
		if cell(t, tab, r, "model") == "diffusive" {
			continue
		}
		disc, err := strconv.ParseInt(cell(t, tab, r, "disc"), 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		if disc > 2 {
			t.Errorf("%s: matching model discrepancy %d, want ≤ 2",
				cell(t, tab, r, "algorithm"), disc)
		}
	}
}

func TestIrregularExperimentConverges(t *testing.T) {
	tab := IrregularExperiment(quickCfg())
	for r := range tab.Rows {
		if rd := cellFloat(t, tab, r, "relative disc"); rd > 4 {
			t.Errorf("row %d: relative discrepancy %v on %s", r, rd, cell(t, tab, r, "graph"))
		}
	}
}

func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in non-short mode only")
	}
	tabs := AllExperiments(quickCfg())
	if len(tabs) != 16 {
		t.Fatalf("expected 16 tables, got %d", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) == 0 {
			t.Errorf("table %q is empty", tab.Title)
		}
	}
}

func TestWeightedExperimentBounded(t *testing.T) {
	tab := WeightedExperiment(quickCfg())
	for r := range tab.Rows {
		if ratio := cellFloat(t, tab, r, "disc/(d·w_max)"); ratio > 4 {
			t.Errorf("row %d (%s): weighted discrepancy ratio %v", r, cell(t, tab, r, "weights"), ratio)
		}
	}
}

func TestAblationSelfLoopsLazyRegimeBalances(t *testing.T) {
	tab := AblationSelfLoops(quickCfg())
	for r := range tab.Rows {
		if cell(t, tab, r, "lazy?") == "true" && cell(t, tab, r, "disc ≤ 2d?") != "yes" {
			t.Errorf("lazy row %d failed to balance: %v", r, tab.Rows[r])
		}
	}
}

func TestAblationRotorOrderComparable(t *testing.T) {
	tab := AblationRotorOrder(quickCfg())
	var lo, hi float64
	for r := range tab.Rows {
		v := cellFloat(t, tab, r, "min disc")
		if r == 0 || v < lo {
			lo = v
		}
		if r == 0 || v > hi {
			hi = v
		}
		if delta := cellFloat(t, tab, r, "measured δ"); delta > 1 {
			t.Errorf("order %s broke cumulative 1-fairness (δ=%v)", cell(t, tab, r, "order"), delta)
		}
	}
	if hi-lo > 8 {
		t.Errorf("slot orders should be comparable: min disc spread %v..%v", lo, hi)
	}
}
