package analysis

import (
	"context"
	"reflect"
	"testing"

	"detlb/internal/balancer"
	"detlb/internal/core"
	"detlb/internal/graph"
	"detlb/internal/protocol"
	"detlb/internal/topology"
	"detlb/internal/workload"
)

// majoritySpec is the canonical majority-protocol run: a 64-agent instance
// with a 40/24 strong-opinion split, judged by the unconverged-minority
// metric down to consensus. The builder is shared across workers so sweep
// grouping has a real identity to key on.
func majoritySpec(mb core.ModelBuilder, workers int) RunSpec {
	return RunSpec{
		Balancing:         graph.Lazy(graph.RandomRegular(64, 8, 1)),
		Model:             mb,
		Metric:            protocol.Unconverged,
		Initial:           workload.Opinions(64, 40),
		MaxRounds:         512,
		Workers:           workers,
		TargetDiscrepancy: Target(0),
		SampleEvery:       4,
	}
}

// hermanSpec is the canonical Herman run: a 33-node ring with 9 tokens,
// judged by the surviving-token count down to stabilization. Herman's flip
// phase runs on the kernel, so workers exercises real parallelism.
func hermanSpec(mb core.ModelBuilder, workers int) RunSpec {
	return RunSpec{
		Balancing:         graph.Lazy(graph.Cycle(33)),
		Model:             mb,
		Metric:            protocol.Tokens,
		Initial:           workload.Tokens(33, 9, 1),
		MaxRounds:         4096,
		Workers:           workers,
		TargetDiscrepancy: Target(1),
		SampleEvery:       16,
	}
}

// TestModelRunDeterministicAcrossWorkersAndEntryPoints is the protocol
// counterpart of the faulted-run determinism test: every worker count and
// every entry point — Run, Sweep (model reuse via Reset), StreamInto — must
// produce bit-identical results for both protocol families.
func TestModelRunDeterministicAcrossWorkersAndEntryPoints(t *testing.T) {
	cases := []struct {
		name string
		spec func(workers int) RunSpec
	}{
		{"majority", func(w int) RunSpec { return majoritySpec(protocol.NewMajority(64, 7), w) }},
		{"herman", func(w int) RunSpec { return hermanSpec(protocol.NewHerman(7), w) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := Run(tc.spec(0))
			if ref.Err != nil {
				t.Fatal(ref.Err)
			}
			if !ref.ReachedTarget {
				t.Fatalf("reference run did not converge: %+v", ref)
			}
			if ref.Metric == "" {
				t.Fatal("model result carries no metric name")
			}
			for _, w := range []int{1, 2, 8} {
				got := Run(tc.spec(w))
				if got.Err != nil {
					t.Fatal(got.Err)
				}
				if !reflect.DeepEqual(ref, got) {
					t.Fatalf("workers=%d result differs from serial:\n%+v\nvs\n%+v", w, got, ref)
				}
			}
			// Sweep reuses one model across the duplicated specs via Reset;
			// both results must match the fresh-model path exactly.
			sw := Sweep([]RunSpec{tc.spec(0), tc.spec(0)}, SweepOptions{})
			for i, got := range sw {
				if !reflect.DeepEqual(ref, got) {
					t.Fatalf("sweep result %d differs from Run:\n%+v\nvs\n%+v", i, got, ref)
				}
			}
			var streamed RunResult
			rounds := 0
			for range StreamInto(context.Background(), tc.spec(2), &streamed) {
				rounds++
			}
			if !reflect.DeepEqual(ref, streamed) {
				t.Fatalf("stream result differs from Run:\n%+v\nvs\n%+v", streamed, ref)
			}
			if rounds != ref.Rounds+1 {
				t.Fatalf("stream yielded %d observations for %d rounds", rounds, ref.Rounds)
			}
		})
	}
}

// TestModelSweepGroupsShareOneBuilder: specs sharing a builder land in one
// sweep group, and grouping does not bleed state between specs with
// different initial vectors.
func TestModelSweepGroupsShareOneBuilder(t *testing.T) {
	mb := protocol.NewMajority(64, 7)
	a := majoritySpec(mb, 0)
	b := majoritySpec(mb, 0)
	b.Initial = workload.Opinions(64, 50)
	sw := Sweep([]RunSpec{a, b, a}, SweepOptions{Workers: 1})
	for i, res := range sw {
		if res.Err != nil {
			t.Fatalf("spec %d: %v", i, res.Err)
		}
	}
	if !reflect.DeepEqual(sw[0], sw[2]) {
		t.Fatal("identical specs diverged across an interleaved reused model")
	}
	if sw[0].InitialDiscrepancy == sw[1].InitialDiscrepancy {
		t.Fatal("distinct initial vectors produced the same initial metric")
	}
	if !reflect.DeepEqual(sw[0], Run(a)) || !reflect.DeepEqual(sw[1], Run(b)) {
		t.Fatal("reused-model sweep results differ from fresh Run results")
	}
}

// TestModelSpecRejections: the diffusion-only RunSpec machinery has no model
// analogue and must be rejected up front, with the error in the result.
func TestModelSpecRejections(t *testing.T) {
	base := func() RunSpec { return majoritySpec(protocol.NewMajority(64, 7), 0) }
	cases := []struct {
		name   string
		mutate func(*RunSpec)
	}{
		{"no balancing", func(s *RunSpec) { s.Balancing = nil }},
		{"both algorithm and model", func(s *RunSpec) { s.Algorithm = balancer.NewSendFloor() }},
		{"no metric", func(s *RunSpec) { s.Metric = nil }},
		{"workload schedule", func(s *RunSpec) { s.Events = workload.Burst{Round: 1, Node: 0, Amount: 8} }},
		{"topology schedule", func(s *RunSpec) { s.Topology = topology.Partition{Round: 1, Boundary: 32} }},
		{"engine auditors", func(s *RunSpec) { s.Auditors = []core.Auditor{core.NewConservationAuditor()} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := base()
			tc.mutate(&spec)
			if res := Run(spec); res.Err == nil {
				t.Fatalf("spec accepted: %+v", res)
			}
			// The same spec through Sweep and StreamInto reports an error too.
			if sw := Sweep([]RunSpec{spec}, SweepOptions{}); sw[0].Err == nil {
				t.Fatal("sweep accepted the broken spec")
			}
			var streamed RunResult
			for range StreamInto(context.Background(), spec, &streamed) {
			}
			if streamed.Err == nil {
				t.Fatal("stream accepted the broken spec")
			}
		})
	}
}

// TestModelBadInitialVectorSurfacesError: Model.New validates the initial
// vector; the constructor error must reach the result, not panic the run.
func TestModelBadInitialVectorSurfacesError(t *testing.T) {
	spec := majoritySpec(protocol.NewMajority(64, 7), 0)
	spec.Initial = workload.Uniform(64, 3) // 3 is not a legal opinion
	if res := Run(spec); res.Err == nil {
		t.Fatal("illegal opinion vector accepted")
	}
	spec = hermanSpec(protocol.NewHerman(7), 0)
	spec.Initial = workload.Uniform(33, 1) // 33 tokens is odd, but wrong length next
	spec.Initial = spec.Initial[:32]
	if res := Run(spec); res.Err == nil {
		t.Fatal("wrong-length token vector accepted")
	}
}

// TestModelPatienceStopsStalledRun: patience semantics carry over from the
// diffusion path — a metric that stops improving ends the run early.
func TestModelPatienceStopsStalledRun(t *testing.T) {
	spec := hermanSpec(protocol.NewHerman(3), 0)
	spec.TargetDiscrepancy = nil // stabilized runs hold tokens=1 forever
	spec.Patience = 32
	res := Run(spec)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.StoppedEarly {
		t.Fatalf("stalled model run never hit patience: %+v", res)
	}
	if res.Rounds >= res.Horizon {
		t.Fatalf("patience stop at the horizon is no stop: %+v", res)
	}
}
