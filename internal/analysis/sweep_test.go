package analysis

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"detlb/internal/balancer"
	"detlb/internal/core"
	"detlb/internal/graph"
	"detlb/internal/workload"
)

// sweepSpecs builds a mixed 24-spec family: two graphs × three algorithms ×
// four workloads, with a couple of pooled-engine specs mixed in.
func sweepSpecs() []RunSpec {
	expander := graph.Lazy(graph.RandomRegular(64, 8, 3))
	cycle := graph.Lazy(graph.Cycle(33))
	algos := []core.Balancer{
		balancer.NewSendFloor(),
		balancer.NewRotorRouter(),
		balancer.NewGoodS(2),
	}
	var specs []RunSpec
	for _, b := range []*graph.Balancing{expander, cycle} {
		for ai, algo := range algos {
			for w := 0; w < 4; w++ {
				spec := RunSpec{
					Balancing: b,
					Algorithm: algo,
					Initial:   workload.PointMass(b.N(), w%b.N(), int64(100*(w+1))+7),
					MaxRounds: 40,
				}
				if ai == 1 && w == 3 {
					spec.Workers = 2 // exercise pooled engines inside a sweep
				}
				specs = append(specs, spec)
			}
		}
	}
	return specs
}

// TestSweepMatchesSerialRunLoop pins the headline contract: Sweep's engine
// reuse (Engine.Reset) and group scheduling yield bit-identical per-spec
// results to a serial loop of fresh-engine Run calls, at every sweep worker
// count.
func TestSweepMatchesSerialRunLoop(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	specs := sweepSpecs()

	ref := make([]RunResult, len(specs))
	for i, spec := range specs {
		ref[i] = Run(spec)
		if ref[i].Err != nil {
			t.Fatalf("spec %d: %v", i, ref[i].Err)
		}
	}

	for _, workers := range []int{1, 4, 8} {
		got := Sweep(specs, SweepOptions{Workers: workers})
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d results for %d specs", workers, len(got), len(specs))
		}
		for i := range ref {
			if !reflect.DeepEqual(ref[i], got[i]) {
				t.Fatalf("workers=%d spec %d: sweep result diverges from serial Run:\n got %+v\nwant %+v",
					workers, i, got[i], ref[i])
			}
		}
	}
}

// TestSweepReusedEngineMatchesFresh drives one (graph, algorithm) group —
// maximal engine reuse, every spec after the first runs on a Reset engine —
// and checks each result against a fresh-engine Run.
func TestSweepReusedEngineMatchesFresh(t *testing.T) {
	b := graph.Lazy(graph.RandomRegular(48, 8, 11))
	rotor := balancer.NewRotorRouter()
	var specs []RunSpec
	for i := 0; i < 10; i++ {
		specs = append(specs, RunSpec{
			Balancing: b,
			Algorithm: rotor,
			Initial:   workload.PointMass(b.N(), i, int64(64*(i+1))+1),
			MaxRounds: 60,
		})
	}
	got := Sweep(specs, SweepOptions{Workers: 1})
	for i, spec := range specs {
		want := Run(spec)
		if !reflect.DeepEqual(want, got[i]) {
			t.Fatalf("spec %d: reset-engine result diverges from fresh engine:\n got %+v\nwant %+v", i, got[i], want)
		}
	}
}

// TestSweepNoGoroutineGrowth is the regression test for the pooled-engine
// leak: analysis.Run used to construct Workers > 1 engines and never close
// them, leaking pool goroutines until GC. Repeated pooled runs and sweeps
// must leave the goroutine count where it started.
func TestSweepNoGoroutineGrowth(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	b := graph.Lazy(graph.RandomRegular(64, 8, 5))
	spec := RunSpec{
		Balancing: b,
		Algorithm: balancer.NewSendFloor(),
		Initial:   workload.PointMass(64, 0, 641),
		MaxRounds: 5,
		Workers:   4,
	}

	before := runtime.NumGoroutine()
	for i := 0; i < 25; i++ {
		if res := Run(spec); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	specs := make([]RunSpec, 50)
	for i := range specs {
		specs[i] = spec
	}
	for _, res := range Sweep(specs, SweepOptions{Workers: 4}) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}

	// Close makes workers exit on channel close, but their final descheduling
	// is asynchronous; poll briefly before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d across pooled runs", before, g)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSweepSurvivesBadSpecs: invalid specs report through Err without
// aborting the sweep or corrupting neighboring results.
func TestSweepSurvivesBadSpecs(t *testing.T) {
	b := graph.Lazy(graph.Hypercube(4))
	good := RunSpec{
		Balancing: b,
		Algorithm: balancer.NewSendFloor(),
		Initial:   workload.PointMass(16, 0, 163),
		MaxRounds: 20,
	}
	specs := []RunSpec{
		good,
		{Balancing: b, Algorithm: balancer.NewSendFloor(), Initial: make([]int64, 7)}, // wrong length
		{Algorithm: balancer.NewSendFloor(), Initial: workload.PointMass(16, 0, 1)},   // nil graph
		{Balancing: b, Initial: workload.PointMass(16, 0, 1)},                         // nil algorithm
		// good-s with s > d° panics at bind time; the sweep must contain it.
		{Balancing: b, Algorithm: balancer.NewGoodS(99), Initial: workload.PointMass(16, 0, 163)},
		good,
	}
	results := Sweep(specs, SweepOptions{Workers: 2})
	for _, i := range []int{1, 2, 3, 4} {
		if results[i].Err == nil {
			t.Fatalf("spec %d should have failed", i)
		}
	}
	want := Run(good)
	for _, i := range []int{0, 5} {
		if !reflect.DeepEqual(want, results[i]) {
			t.Fatalf("good spec %d corrupted by neighboring bad specs:\n got %+v\nwant %+v", i, results[i], want)
		}
	}
}

// TestRunReportsInvalidSpec: the Run entry point itself must not panic on a
// bad spec (it used to, via core.MustEngine).
func TestRunReportsInvalidSpec(t *testing.T) {
	b := graph.Lazy(graph.Cycle(8))
	res := Run(RunSpec{Balancing: b, Algorithm: balancer.NewSendFloor(), Initial: make([]int64, 3)})
	if res.Err == nil {
		t.Fatal("wrong-length initial vector must surface through Err")
	}
	if res := Run(RunSpec{}); res.Err == nil {
		t.Fatal("empty spec must surface through Err")
	}
}

// TestSweepAuditorSpecsGetFreshEngines: specs with auditors run correctly
// inside a group of auditor-free specs sharing an engine.
func TestSweepAuditorSpecsGetFreshEngines(t *testing.T) {
	b := graph.Lazy(graph.RandomRegular(32, 6, 2))
	rotor := balancer.NewRotorRouter()
	plain := RunSpec{Balancing: b, Algorithm: rotor, Initial: workload.PointMass(32, 0, 321), MaxRounds: 30}
	audited := plain
	audited.Auditors = []core.Auditor{core.NewConservationAuditor(), core.NewCumulativeFairnessAuditor(1)}

	results := Sweep([]RunSpec{plain, audited, plain}, SweepOptions{Workers: 1})
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("spec %d: %v", i, res.Err)
		}
	}
	if !reflect.DeepEqual(results[0], results[2]) {
		t.Fatalf("audited middle spec perturbed its neighbors:\n%+v\n%+v", results[0], results[2])
	}
}

// TestSweepEmpty covers the degenerate inputs.
func TestSweepEmpty(t *testing.T) {
	if got := Sweep(nil, SweepOptions{}); len(got) != 0 {
		t.Fatalf("nil specs produced %d results", len(got))
	}
	if got := Sweep([]RunSpec{}, SweepOptions{Workers: 100}); len(got) != 0 {
		t.Fatalf("empty specs produced %d results", len(got))
	}
}

// TestSweepSampling: sampled series survive the sweep path and carry the
// load extrema for trace export.
func TestSweepSampling(t *testing.T) {
	b := graph.Lazy(graph.Hypercube(4))
	specs := []RunSpec{{
		Balancing:   b,
		Algorithm:   balancer.NewSendFloor(),
		Initial:     workload.PointMass(16, 0, 160),
		MaxRounds:   100,
		SampleEvery: 10,
	}}
	res := Sweep(specs, SweepOptions{})[0]
	if len(res.Series) != 10 {
		t.Fatalf("expected 10 samples, got %d", len(res.Series))
	}
	for _, p := range res.Series {
		if p.Max-p.Min != p.Discrepancy {
			t.Fatalf("sample %+v: extrema inconsistent with discrepancy", p)
		}
	}
}

func ExampleSweep() {
	b := graph.Lazy(graph.Hypercube(4))
	specs := []RunSpec{
		{Balancing: b, Algorithm: balancer.NewSendFloor(), Initial: workload.PointMass(16, 0, 163)},
		{Balancing: b, Algorithm: balancer.NewSendFloor(), Initial: workload.PointMass(16, 3, 301)},
	}
	for _, res := range Sweep(specs, SweepOptions{Workers: 2}) {
		fmt.Println(res.FinalDiscrepancy <= 8)
	}
	// Output:
	// true
	// true
}
