package analysis

import (
	"testing"

	"detlb/internal/balancer"
	"detlb/internal/graph"
	"detlb/internal/spectral"
	"detlb/internal/workload"
)

func TestConvergeHalvingTimes(t *testing.T) {
	b := graph.Lazy(graph.Hypercube(6))
	x1 := workload.PointMass(64, 0, 64*64+9)
	p, err := Converge(b, balancer.NewRotorRouter(), x1, int64(2*b.Degree()), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if p.TargetRound < 0 {
		t.Fatalf("never reached 2d: %+v", p)
	}
	if len(p.HalvingRounds) < 5 {
		t.Fatalf("expected several halvings, got %v", p.HalvingRounds)
	}
	for i := 1; i < len(p.HalvingRounds); i++ {
		if p.HalvingRounds[i] < p.HalvingRounds[i-1] {
			t.Fatal("halving rounds must be non-decreasing")
		}
	}
}

func TestConvergeRespectsCap(t *testing.T) {
	b := graph.Lazy(graph.Cycle(64))
	x1 := workload.PointMass(64, 0, 64*64+9)
	p, err := Converge(b, balancer.NewSendFloor(), x1, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rounds != 10 || p.TargetRound != -1 {
		t.Fatalf("cap not respected: %+v", p)
	}
}

func TestWindowDeviationBoundedAfterT(t *testing.T) {
	// The empirical Equation (7): after the paper's warm-up, every node's
	// window-averaged load sits within O((δ+1)·d) of x̄. Use the explicit
	// constant from the proof: δ·d⁺ + 2r + 1/2 + λ with λ = O(d); a slack
	// bound of 4·d⁺ comfortably covers send-floor (δ=0, r ≤ d⁺).
	b := graph.Lazy(graph.Hypercube(6))
	n := b.N()
	x1 := workload.PointMass(n, 0, int64(n*40)+13)
	mu := spectral.Gap(b)
	start := spectral.BalancingTime(n, int(workload.Discrepancy(x1)), mu)
	window := spectral.MixingTime(n, mu) * b.Degree()
	dev, err := WindowDeviation(b, balancer.NewSendFloor(), x1, start, window)
	if err != nil {
		t.Fatal(err)
	}
	if limit := float64(4 * b.DegreePlus()); dev > limit {
		t.Fatalf("window deviation %v exceeds %v", dev, limit)
	}
}

func TestWindowDeviationRejectsBadWindow(t *testing.T) {
	b := graph.Lazy(graph.Cycle(8))
	if _, err := WindowDeviation(b, balancer.NewSendFloor(), workload.Uniform(8, 1), 0, 0); err == nil {
		t.Fatal("expected window error")
	}
}

func TestWindowDeviationRotorTight(t *testing.T) {
	// Rotor-router is cumulatively 1-fair; its long-run deviation should be
	// tiny (within 2·d⁺) on an expander.
	b := graph.Lazy(graph.RandomRegular(128, 8, 2))
	x1 := workload.PointMass(128, 0, 128*16+7)
	dev, err := WindowDeviation(b, balancer.NewRotorRouter(), x1, 2000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if dev > float64(2*b.DegreePlus()) {
		t.Fatalf("rotor window deviation %v", dev)
	}
}
