package analysis

import (
	"fmt"
	"io"
	"strings"
)

// RenderMarkdown writes a table as GitHub-flavoured Markdown: a heading,
// the pipe table, and the note as a blockquote. lbreport uses it to emit a
// machine-regenerated companion to EXPERIMENTS.md.
func (t *Table) RenderMarkdown(w io.Writer) error {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "## %s\n\n", t.Title)
	}
	sb.WriteString("| " + strings.Join(escapeCells(t.Header), " | ") + " |\n")
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	sb.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		cells := escapeCells(row)
		// Pad short rows so the Markdown table stays rectangular.
		for len(cells) < len(t.Header) {
			cells = append(cells, "")
		}
		sb.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	if t.Note != "" {
		fmt.Fprintf(&sb, "\n> %s\n", t.Note)
	}
	sb.WriteString("\n")
	if _, err := io.WriteString(w, sb.String()); err != nil {
		return fmt.Errorf("analysis: render markdown: %w", err)
	}
	return nil
}

func escapeCells(cells []string) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		out[i] = strings.ReplaceAll(c, "|", "\\|")
	}
	return out
}

// WriteReport renders a full experiment suite as one Markdown document.
func WriteReport(w io.Writer, title string, tables []*Table) error {
	if _, err := fmt.Fprintf(w, "# %s\n\n", title); err != nil {
		return fmt.Errorf("analysis: write report: %w", err)
	}
	for _, t := range tables {
		if err := t.RenderMarkdown(w); err != nil {
			return err
		}
	}
	return nil
}
