package analysis

import (
	"context"
	"fmt"
	"iter"

	"detlb/internal/core"
)

// This file is the model-agnostic side of the harness: RunSpec.Model selects
// it, and every entry point — Run, Sweep, Stream/StreamInto — routes model
// specs here while diffusion specs keep their historical path untouched.
// streamModel mirrors streamEngine's static round loop exactly (round-0
// yield, target stop including round 0, no-new-minimum patience, horizon
// exit, Step-error and cancellation bookkeeping, sampling semantics), with
// the spec's Metric in place of the load discrepancy; the diffusion-specific
// machinery (shock injection, topology deltas, engine auditors) has no model
// analogue and such specs are rejected up front.

// prepareModelResult computes the machine-independent result fields for a
// model run — the counterpart of prepareResult. ok is false when the spec is
// too broken to build a model from; res.Err carries the reason.
func prepareModelResult(spec RunSpec) (res RunResult, ok bool) {
	res = RunResult{TargetRound: -1}
	if spec.Balancing == nil {
		res.Err = fmt.Errorf("analysis: model spec needs a balancing graph (it sizes the run and labels results)")
		return res, false
	}
	if spec.Algorithm != nil {
		res.Err = fmt.Errorf("analysis: spec sets both Algorithm and Model; pick one")
		return res, false
	}
	if spec.Metric == nil {
		res.Err = fmt.Errorf("analysis: model spec needs a Metric")
		return res, false
	}
	if spec.Events != nil || spec.Topology != nil {
		res.Err = fmt.Errorf("analysis: model runs do not support workload or topology schedules")
		return res, false
	}
	if len(spec.Auditors) > 0 {
		res.Err = fmt.Errorf("analysis: spec auditors are engine-typed; model invariants are audited inside the model")
		return res, false
	}
	res.Metric = spec.Metric.Name()
	res.InitialDiscrepancy = spec.Metric.Measure(spec.Initial)
	horizon := spec.MaxRounds
	if horizon == 0 {
		horizon = spec.Model.DefaultHorizon(spec.Balancing.N())
		if m := spec.HorizonMultiple; m > 1 {
			horizon *= m
		}
		if horizon < 1 {
			horizon = 1
		}
	}
	res.Horizon = horizon
	return res, true
}

// streamModel drives a model already holding the spec's initial vector
// through the round loop, yielding one snapshot per observation and folding
// the RunResult bookkeeping into res — streamEngine's static path with
// spec.Metric in place of the discrepancy (Snapshot.Discrepancy and the
// Series carry the metric value; Max/Min carry the state extrema). It is the
// single model round loop: Run, the sweep runner (models reused via
// Model.Reset), and every streaming consumer drain it, so their results are
// bit-identical to each other at every worker count.
func streamModel(ctx context.Context, spec RunSpec, m core.Model, res *RunResult) iter.Seq2[Round, Snapshot] {
	return func(yield func(Round, Snapshot) bool) {
		target, targetSet := int64(0), false
		if spec.TargetDiscrepancy != nil {
			target, targetSet = *spec.TargetDiscrepancy, true
		}
		lo, hi := core.Extrema(m.State())
		val := spec.Metric.Measure(m.State())
		best := val
		res.MinDiscrepancy = best
		res.FinalDiscrepancy = val
		horizon := res.Horizon

		if targetSet && val <= target {
			// The initial state already meets the target: time-to-target is 0
			// rounds, exactly as on the static diffusion path.
			res.ReachedTarget = true
			res.TargetRound = 0
			if spec.SampleEvery > 0 {
				res.Series = append(res.Series, Point{Round: 0, Discrepancy: val, Max: hi, Min: lo})
			}
			yield(0, Snapshot{Discrepancy: val, Max: hi, Min: lo})
			return
		}

		// Round 0 — the state before the first round — opens every stream.
		if !yield(0, Snapshot{Discrepancy: val, Max: hi, Min: lo}) {
			if spec.SampleEvery > 0 {
				res.Series = append(res.Series, Point{Round: 0, Discrepancy: val, Max: hi, Min: lo})
			}
			return
		}

		patienceBest := val
		lastImprovement := 0

		// finish records the stopping state, appending the final sample when
		// the stop fell between sampling points.
		finish := func(round int, val, lo, hi int64, sampled bool) {
			res.Rounds = round
			res.FinalDiscrepancy = val
			res.MinDiscrepancy = best
			if spec.SampleEvery > 0 && !sampled {
				res.Series = append(res.Series, Point{Round: round, Discrepancy: val, Max: hi, Min: lo})
			}
		}

		lastVal, lastLo, lastHi := val, lo, hi
		lastSampled := false
		for round := 1; round <= horizon; round++ {
			if ctx.Err() != nil {
				// Per-round cancellation, keeping every completed round's
				// bookkeeping.
				res.Err = &streamCanceledError{cause: context.Cause(ctx)}
				finish(round-1, lastVal, lastLo, lastHi, lastSampled)
				return
			}
			if err := m.Step(); err != nil {
				// The failed round did execute (state is left advanced for
				// debugging), so its metric value joins the bookkeeping like
				// any other stopping round.
				res.Err = err
				slo, shi := core.Extrema(m.State())
				sval := spec.Metric.Measure(m.State())
				if sval < best {
					best = sval
				}
				finish(round, sval, slo, shi, false)
				yield(round, Snapshot{Discrepancy: sval, Max: shi, Min: slo})
				return
			}
			lo, hi := core.Extrema(m.State())
			val := spec.Metric.Measure(m.State())
			sampled := false
			if spec.SampleEvery > 0 && round%spec.SampleEvery == 0 {
				res.Series = append(res.Series, Point{Round: round, Discrepancy: val, Max: hi, Min: lo})
				sampled = true
			}
			if val < best {
				best = val
			}
			if val < patienceBest {
				patienceBest = val
				lastImprovement = round
			}
			if targetSet && val <= target {
				res.ReachedTarget = true
				res.TargetRound = round
				finish(round, val, lo, hi, sampled)
				yield(round, Snapshot{Discrepancy: val, Max: hi, Min: lo})
				return
			}
			if spec.Patience > 0 && round-lastImprovement >= spec.Patience {
				res.StoppedEarly = true
				finish(round, val, lo, hi, sampled)
				yield(round, Snapshot{Discrepancy: val, Max: hi, Min: lo})
				return
			}
			lastVal, lastLo, lastHi, lastSampled = val, lo, hi, sampled
			if round < horizon {
				if !yield(round, Snapshot{Discrepancy: val, Max: hi, Min: lo}) {
					finish(round, val, lo, hi, sampled)
					return
				}
			}
		}
		// Horizon exhausted. The final state joins the series like any other
		// stopping round when it fell mid-interval.
		finish(horizon, lastVal, lastLo, lastHi, lastSampled || horizon < 1)
		if horizon >= 1 {
			yield(horizon, Snapshot{Discrepancy: lastVal, Max: lastHi, Min: lastLo})
		}
	}
}

// runModelContext drives a model already holding the spec's initial vector
// through the streaming round loop, draining it to completion — the sweep
// runner's model entry point (models reused across specs via Model.Reset),
// bit-identical to Run's fresh-model path.
func runModelContext(ctx context.Context, spec RunSpec, m core.Model, res RunResult) RunResult {
	for range streamModel(ctx, spec, m, &res) {
	}
	return res
}
