package analysis

import (
	"fmt"

	"detlb/internal/irregular"
)

// IrregularExperiment (EXT2) exercises the paper's stated extension to
// non-regular graphs: on hub-and-spoke and barbell topologies, the
// degree-aware SEND(⌊x/d⁺(u)⌋) and rotor-router converge to the
// degree-proportional fair share with O(1) relative discrepancy.
func IrregularExperiment(cfg Config) *Table {
	t := &Table{
		Title: "EXT2: non-regular extension — convergence to the degree-proportional fair share",
		Header: []string{"graph", "n", "max d", "algorithm", "rounds",
			"dev from fair share", "relative disc"},
		Note: "fair share(u) = m·d⁺(u)/Σd⁺; relative disc = spread of x(u)/d⁺(u)",
	}
	type instance struct {
		g     *irregular.Graph
		total int64
	}
	instances := []instance{
		{starGraph(12), 4001},
		{barbellGraph(8), 6007},
		{caterpillarGraph(10, 3), 3001},
	}
	if cfg.Quick {
		instances = instances[:2]
	}
	for _, inst := range instances {
		b := irregular.Lazy(inst.g)
		for _, algo := range []irregular.Balancer{irregular.SendFloor{}, irregular.RotorRouter{}} {
			x1 := make([]int64, inst.g.N())
			x1[inst.g.N()-1] = inst.total
			eng := irregular.MustEngine(b, algo, x1)
			rounds := 8000
			eng.Run(rounds)
			t.AddRow(inst.g.Name(), itoa(inst.g.N()), itoa(inst.g.MaxDegree()),
				algo.Name(), itoa(rounds),
				fmt.Sprintf("%.1f", b.DeviationFromFairShare(eng.Loads())),
				fmt.Sprintf("%.2f", b.RelativeDiscrepancy(eng.Loads())))
		}
	}
	return t
}

func starGraph(k int) *irregular.Graph {
	adj := make([][]int, k+1)
	for i := 1; i <= k; i++ {
		adj[0] = append(adj[0], i)
		adj[i] = []int{0}
	}
	return irregular.MustNew(fmt.Sprintf("star(%d)", k), adj)
}

func barbellGraph(k int) *irregular.Graph {
	n := 2 * k
	adj := make([][]int, n)
	for side := 0; side < 2; side++ {
		base := side * k
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				if i != j {
					adj[base+i] = append(adj[base+i], base+j)
				}
			}
		}
	}
	adj[k-1] = append(adj[k-1], k)
	adj[k] = append(adj[k], k-1)
	return irregular.MustNew(fmt.Sprintf("barbell(%d)", k), adj)
}

// caterpillarGraph is a path of length spine with legs leaves hanging off
// every spine node — wildly irregular degrees (1 vs legs+2).
func caterpillarGraph(spine, legs int) *irregular.Graph {
	n := spine + spine*legs
	adj := make([][]int, n)
	link := func(u, v int) {
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	for i := 1; i < spine; i++ {
		link(i-1, i)
	}
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			link(i, spine+i*legs+l)
		}
	}
	return irregular.MustNew(fmt.Sprintf("caterpillar(%d,%d)", spine, legs), adj)
}
