package analysis

import (
	"fmt"
	"math"

	"detlb/internal/core"
	"detlb/internal/graph"
)

// ConvergenceProfile summarizes how fast a run drives the discrepancy down:
// the first round at which the discrepancy falls to K/2, K/4, …, and to an
// absolute target. It is the empirical counterpart of the T = O(log(Kn)/µ)
// horizon: halving times should be roughly uniform (geometric decay).
type ConvergenceProfile struct {
	// K is the initial discrepancy.
	K int64
	// HalvingRounds[i] is the first round with discrepancy ≤ K/2^(i+1).
	HalvingRounds []int
	// TargetRound is the first round with discrepancy ≤ Target, or -1.
	Target      int64
	TargetRound int
	// Final is the discrepancy when the run stopped.
	Final int64
	// Rounds is the total rounds executed.
	Rounds int
}

// Converge runs algo on b from x1 for at most maxRounds, recording halving
// times down to the given absolute target.
func Converge(b *graph.Balancing, algo core.Balancer, x1 []int64, target int64, maxRounds int) (*ConvergenceProfile, error) {
	eng, err := core.NewEngine(b, algo, x1)
	if err != nil {
		return nil, err
	}
	k := core.Discrepancy(x1)
	p := &ConvergenceProfile{K: k, Target: target, TargetRound: -1}
	next := k / 2
	for round := 1; round <= maxRounds; round++ {
		if err := eng.Step(); err != nil {
			return nil, fmt.Errorf("analysis: converge: %w", err)
		}
		disc := eng.Discrepancy()
		for next > 0 && disc <= next && next >= target {
			p.HalvingRounds = append(p.HalvingRounds, round)
			next /= 2
		}
		if p.TargetRound < 0 && disc <= target {
			p.TargetRound = round
			p.Final = disc
			p.Rounds = round
			return p, nil
		}
	}
	p.Final = eng.Discrepancy()
	p.Rounds = maxRounds
	return p, nil
}

// WindowDeviation empirically evaluates the quantity bounded by Equation (7)
// in the proof of Theorem 2.3 (and by Lemma 3.4): after a warm-up of "start"
// rounds, it measures
//
//	max_u | (1/T̂)·Σ_{t ∈ window} x_t(u) − x̄ |
//
// — the deviation of every node's time-averaged load from the true average
// x̄ over a window of length T̂. The paper proves this is O((δ+1)·d) once
// start ≥ 16·log(Kn)/µ and T̂ = Θ(d·log n/µ).
func WindowDeviation(b *graph.Balancing, algo core.Balancer, x1 []int64, start, window int) (float64, error) {
	if window <= 0 {
		return 0, fmt.Errorf("analysis: window must be positive, got %d", window)
	}
	eng, err := core.NewEngine(b, algo, x1)
	if err != nil {
		return 0, err
	}
	for t := 0; t < start; t++ {
		if err := eng.Step(); err != nil {
			return 0, fmt.Errorf("analysis: warm-up: %w", err)
		}
	}
	n := b.N()
	sums := make([]int64, n)
	for t := 0; t < window; t++ {
		if err := eng.Step(); err != nil {
			return 0, fmt.Errorf("analysis: window: %w", err)
		}
		for u, v := range eng.Loads() {
			sums[u] += v
		}
	}
	var total int64
	for _, v := range x1 {
		total += v
	}
	xbar := float64(total) / float64(n)
	worst := 0.0
	for _, s := range sums {
		dev := math.Abs(float64(s)/float64(window) - xbar)
		if dev > worst {
			worst = dev
		}
	}
	return worst, nil
}
