package analysis

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"detlb/internal/balancer"
	"detlb/internal/graph"
	"detlb/internal/trace"
	"detlb/internal/workload"
)

// TestSampleWireEncoding: Snapshot and Point encode to identical trace
// records for the same observation, shock markers carried behind the pointer.
func TestSampleWireEncoding(t *testing.T) {
	snap := Snapshot{Discrepancy: 7, Max: 9, Min: 2}
	got := snap.Sample(13)
	want := trace.Sample{Round: 13, Discrepancy: 7, Max: 9, Min: 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("plain snapshot: %+v", got)
	}

	shocked := Snapshot{Discrepancy: 64, Max: 64, Min: 0, Shock: true, Injected: 0}
	s := shocked.Sample(5)
	if s.Shock == nil || *s.Shock != 0 {
		t.Fatalf("net-0 shock must still mark: %+v", s)
	}

	p := Point{Round: 5, Discrepancy: 64, Max: 64, Min: 0, Shock: true, Injected: -3}
	ps := p.Sample()
	if ps.Round != 5 || ps.Shock == nil || *ps.Shock != -3 {
		t.Fatalf("point sample: %+v", ps)
	}
	if !reflect.DeepEqual(
		Snapshot{Discrepancy: 64, Max: 64, Min: 0, Shock: true, Injected: -3}.Sample(5), ps) {
		t.Fatal("Point and Snapshot wire encodings drifted apart")
	}
}

// signalingSchedule closes started the first time it is consulted — a hook to
// cancel a sweep only once a spec is provably in flight.
type signalingSchedule struct {
	once    sync.Once
	started chan struct{}
}

func (s *signalingSchedule) DeltaInto(round int, loads, dst []int64) bool {
	s.once.Do(func() { close(s.started) })
	return false
}

// TestSweepContextCancelInFlight: cancellation stops the spec already
// executing within one round — not just the unstarted ones — keeping its
// completed-round bookkeeping alongside the cancellation error.
func TestSweepContextCancelInFlight(t *testing.T) {
	b := graph.Lazy(graph.Cycle(64))
	sched := &signalingSchedule{started: make(chan struct{})}
	specs := []RunSpec{{
		Balancing: b,
		Algorithm: balancer.NewRotorRouter(),
		Initial:   workload.PointMass(64, 0, 640),
		MaxRounds: 50_000_000, // would run for ages without the cancel
		Events:    sched,
	}}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-sched.started
		cancel()
	}()

	done := make(chan []RunResult, 1)
	go func() { done <- SweepContext(ctx, specs, SweepOptions{}) }()
	select {
	case results := <-done:
		res := results[0]
		// One sweep cancellation, one wording — whether the spec was in
		// flight or never started.
		if res.Err == nil || !strings.Contains(res.Err.Error(), "analysis: sweep canceled") {
			t.Fatalf("in-flight spec err = %v", res.Err)
		}
		if res.Rounds >= specs[0].MaxRounds {
			t.Fatalf("spec ran to its horizon despite cancellation: %d rounds", res.Rounds)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled sweep did not return — in-flight cancellation is not round-granular")
	}
}
