package analysis

import (
	"fmt"

	"detlb/internal/balancer"
	"detlb/internal/core"
	"detlb/internal/graph"
	"detlb/internal/spectral"
)

// PhaseProfile traces the threshold-crossing structure from the proof of
// Theorem 3.3 (Appendix B.4). The proof partitions the run into phases that
// drive the potentials φ(c) to zero for decreasing thresholds
// c = c₁, c₁−1, …, c₀, where
//
//	c₀ = ⌈(x̄ + δ·d⁺ + 2d° + d⁺/2) / d⁺⌉   (the final balancedness level)
//	c₁ = smallest c with all initial loads ≤ c·d⁺ after the warm-up
//
// PhaseProfile records, for every threshold in [c₀, c₁], the first round at
// which φ(c) reaches zero (equivalently: the maximum load falls below c·d⁺
// forever — Lemma 3.5's monotonicity makes the crossing permanent).
type PhaseProfile struct {
	// C0 and C1 bracket the tracked thresholds.
	C0, C1 int64
	// ZeroRound[i] is the first round with φ(C1−i) = 0 (index 0 ↔ c = C1),
	// or -1 if not reached within the cap.
	ZeroRound []int
	// FinalBalancedness is max load − ⌈x̄⌉ at the end.
	FinalBalancedness int64
	// Bound33 is the Theorem 3.3 discrepancy bound (2δ+1)d⁺ + 4d° with δ=1.
	Bound33 int64
	// Rounds is the number of rounds executed.
	Rounds int
}

// TracePhases runs a good s-balancer and records when each potential level
// empties. delta is the algorithm's cumulative fairness constant (1 for
// every good s-balancer).
func TracePhases(b *graph.Balancing, algo core.Balancer, x1 []int64, maxRounds int) (*PhaseProfile, error) {
	eng, err := core.NewEngine(b, algo, x1)
	if err != nil {
		return nil, err
	}
	n := int64(b.N())
	dplus := int64(b.DegreePlus())
	dLoops := int64(b.SelfLoops())
	var total int64
	var maxLoad int64
	for _, v := range x1 {
		total += v
		if v > maxLoad {
			maxLoad = v
		}
	}
	xbarCeil := core.CeilShare(total, int(n))
	const delta = 1
	c0 := core.CeilShare(xbarCeil+delta*dplus+2*dLoops+dplus/2, int(dplus))
	c1 := core.CeilShare(maxLoad, int(dplus))
	if c1 < c0 {
		c1 = c0
	}
	p := &PhaseProfile{
		C0:        c0,
		C1:        c1,
		ZeroRound: make([]int, c1-c0+1),
		Bound33:   (2*delta+1)*dplus + 4*dLoops,
	}
	for i := range p.ZeroRound {
		p.ZeroRound[i] = -1
	}
	pending := len(p.ZeroRound)
	for round := 1; round <= maxRounds && pending > 0; round++ {
		if err := eng.Step(); err != nil {
			return nil, fmt.Errorf("analysis: phase trace: %w", err)
		}
		p.Rounds = round
		for i := range p.ZeroRound {
			if p.ZeroRound[i] >= 0 {
				continue
			}
			c := c1 - int64(i)
			if core.Phi(eng.Loads(), c, int(dplus)) == 0 {
				p.ZeroRound[i] = round
				pending--
			}
		}
	}
	p.FinalBalancedness = core.Balancedness(eng.Loads())
	return p, nil
}

// Completed reports whether every tracked potential reached zero.
func (p *PhaseProfile) Completed() bool {
	for _, r := range p.ZeroRound {
		if r < 0 {
			return false
		}
	}
	return true
}

// PhaseExperiment renders the phase structure for good s-balancers on a
// hypercube — the worked version of Theorem 3.3's proof bookkeeping.
func PhaseExperiment(cfg Config) *Table {
	var b *graph.Balancing
	if cfg.Quick {
		b = graph.Lazy(graph.Hypercube(5))
	} else {
		b = graph.Lazy(graph.Hypercube(7))
	}
	n := b.N()
	x1 := make([]int64, n)
	x1[0] = int64(48*n) + 5
	cap := 64 * spectral.BalancingTime(n, int(core.Discrepancy(x1)), spectral.Gap(b))
	t := &Table{
		Title: "E11: Theorem 3.3 proof phases — rounds until φ(c) = 0, c = c1..c0",
		Header: []string{"algorithm", "s", "c0", "c1", "phases done", "last zero round",
			"final balancedness", "bound33"},
		Note: "φ(c)=0 means no node ever exceeds c·d⁺ again (Lemma 3.5 monotonicity)",
	}
	d := b.Degree()
	for _, s := range []int{1, d / 2, d} {
		if s < 1 {
			continue
		}
		algo := balancer.NewGoodS(s)
		p, err := TracePhases(b, algo, x1, cap)
		if err != nil {
			t.AddRow(algo.Name(), itoa(s), "-", "-", "ERR: "+err.Error(), "-", "-", "-")
			continue
		}
		last := -1
		for _, r := range p.ZeroRound {
			if r > last {
				last = r
			}
		}
		t.AddRow(algo.Name(), itoa(s), i64toa(p.C0), i64toa(p.C1),
			fmt.Sprintf("%v", p.Completed()), itoa(last),
			i64toa(p.FinalBalancedness), i64toa(p.Bound33))
	}
	return t
}
