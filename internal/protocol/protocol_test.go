package protocol

import (
	"reflect"
	"strings"
	"testing"
)

// opinions builds a ±2 vector with a strong-positive agents and n−a
// strong-negative ones.
func opinions(n, a int) []int64 {
	x := make([]int64, n)
	for i := range x {
		if i < a {
			x[i] = StrongA
		} else {
			x[i] = StrongB
		}
	}
	return x
}

// tokenRing places count tokens on the first count nodes of an n-ring.
func tokenRing(n, count int) []int64 {
	x := make([]int64, n)
	for i := 0; i < count; i++ {
		x[i] = 1
	}
	return x
}

func TestInteractConservesMargin(t *testing.T) {
	vals := []int64{StrongA, WeakA, WeakB, StrongB}
	margin2 := func(a, b int64) int64 { return Margin([]int64{a, b}) }
	for _, a := range vals {
		for _, b := range vals {
			na, nb := interact(a, b)
			if margin2(na, nb) != margin2(a, b) {
				t.Errorf("interact(%d,%d) = (%d,%d): margin %d -> %d",
					a, b, na, nb, margin2(a, b), margin2(na, nb))
			}
			if !validOpinion(na) || !validOpinion(nb) {
				t.Errorf("interact(%d,%d) = (%d,%d): left the state space", a, b, na, nb)
			}
		}
	}
}

func validOpinion(v int64) bool {
	return v == StrongA || v == WeakA || v == WeakB || v == StrongB
}

func TestMajorityConvergesToInitialMajority(t *testing.T) {
	x1 := opinions(64, 40) // margin +16: consensus must be positive
	mb := NewMajority(64, 7)
	m, err := mb.New(x1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < mb.DefaultHorizon(64); r++ {
		if err := m.Step(); err != nil {
			t.Fatalf("round %d: %v", r+1, err)
		}
		if Unconverged.Measure(m.State()) == 0 {
			break
		}
	}
	if got := Unconverged.Measure(m.State()); got != 0 {
		t.Fatalf("no consensus within the default horizon: %d unconverged", got)
	}
	for u, v := range m.State() {
		if v <= 0 {
			t.Fatalf("node %d holds %d after positive-majority consensus", u, v)
		}
	}
	if got := Margin(m.State()); got != 16 {
		t.Fatalf("margin not conserved: got %d, want 16", got)
	}
}

func TestMajorityResetReplaysBitIdentically(t *testing.T) {
	x1 := opinions(48, 20)
	mb := NewMajority(48, 11)

	trajectory := func(m interface {
		Step() error
		State() []int64
	}) [][]int64 {
		var tr [][]int64
		for r := 0; r < 30; r++ {
			if err := m.Step(); err != nil {
				t.Fatal(err)
			}
			tr = append(tr, append([]int64(nil), m.State()...))
		}
		return tr
	}

	fresh, err := mb.New(x1, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := trajectory(fresh)

	reused, err := mb.New(opinions(48, 31), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := reused.Step(); err != nil {
		t.Fatal(err)
	}
	if err := reused.Reset(x1); err != nil {
		t.Fatal(err)
	}
	if got := trajectory(reused); !reflect.DeepEqual(got, want) {
		t.Fatal("trajectory after Reset differs from a fresh machine's")
	}
}

func TestMajorityRejectsBadStates(t *testing.T) {
	mb := NewMajority(8, 1)
	if _, err := mb.New([]int64{2, 2, 2, 2, -2, -2, -2, 3}, 0); err == nil {
		t.Fatal("state value 3 accepted")
	}
	if _, err := mb.New(make([]int64, 4), 0); err == nil {
		t.Fatal("wrong-length / zero-valued vector accepted")
	}
	m, err := mb.New(opinions(8, 5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ApplyDelta(make([]int64, 8)); err == nil {
		t.Fatal("ApplyDelta accepted on an opinion machine")
	}
}

func TestMarginAuditorCatchesViolation(t *testing.T) {
	a := NewMarginAuditor()
	a.ResetState([]int64{StrongA, StrongB})
	if err := a.Observe(1, []int64{StrongA, StrongA}); err == nil {
		t.Fatal("margin violation not reported")
	} else if !strings.Contains(err.Error(), "margin") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestHermanStabilizesToOneToken(t *testing.T) {
	for _, workers := range []int{0, 8} {
		m, err := NewHerman(3).New(tokenRing(33, 9), workers)
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		limit := NewHerman(3).DefaultHorizon(33)
		for r := 0; r < limit; r++ {
			if err := m.Step(); err != nil {
				t.Fatalf("workers=%d round %d: %v", workers, r+1, err)
			}
			if TokenCount(m.State()) == 1 {
				break
			}
		}
		if got := TokenCount(m.State()); got != 1 {
			t.Fatalf("workers=%d: %d tokens after the default horizon", workers, got)
		}
	}
}

func TestHermanDeterministicAcrossWorkers(t *testing.T) {
	x1 := tokenRing(64, 9)
	var want [][]int64
	for _, workers := range []int{0, 1, 2, 8} {
		m, err := NewHerman(5).New(x1, workers)
		if err != nil {
			t.Fatal(err)
		}
		var got [][]int64
		for r := 0; r < 50; r++ {
			if err := m.Step(); err != nil {
				t.Fatal(err)
			}
			got = append(got, append([]int64(nil), m.State()...))
		}
		m.Close()
		if want == nil {
			want = got
		} else if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d trajectory differs from serial", workers)
		}
	}
}

func TestHermanResetReplaysBitIdentically(t *testing.T) {
	hb := NewHerman(9)
	x1 := tokenRing(40, 7)
	fresh, err := hb.New(x1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	var want [][]int64
	for r := 0; r < 25; r++ {
		if err := fresh.Step(); err != nil {
			t.Fatal(err)
		}
		want = append(want, append([]int64(nil), fresh.State()...))
	}

	reused, err := hb.New(tokenRing(40, 11), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer reused.Close()
	if err := reused.Step(); err != nil {
		t.Fatal(err)
	}
	if err := reused.Reset(x1); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 25; r++ {
		if err := reused.Step(); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(append([]int64(nil), reused.State()...), want[r]) {
			t.Fatalf("round %d differs after Reset", r+1)
		}
	}
}

func TestHermanRejectsIllegalConfigurations(t *testing.T) {
	hb := NewHerman(1)
	if _, err := hb.New(tokenRing(16, 4), 0); err == nil {
		t.Fatal("even token count accepted")
	}
	if _, err := hb.New([]int64{1, 0, 2, 0, 1}, 0); err == nil {
		t.Fatal("state value 2 accepted")
	}
	if _, err := hb.New(nil, 0); err == nil {
		t.Fatal("empty ring accepted")
	}
	m, err := hb.New(tokenRing(16, 5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Reset(tokenRing(16, 6)); err == nil {
		t.Fatal("even token count accepted on Reset")
	}
	if err := m.ApplyDelta(make([]int64, 16)); err == nil {
		t.Fatal("ApplyDelta accepted on a token machine")
	}
}

func TestTokenAuditorCatchesViolations(t *testing.T) {
	a := NewTokenAuditor()
	a.ResetState([]int64{1, 1, 1, 0})
	if err := a.Observe(1, []int64{1, 1, 1, 1}); err == nil {
		t.Fatal("count increase not reported")
	}
	a.ResetState([]int64{1, 1, 1, 0})
	if err := a.Observe(1, []int64{1, 1, 0, 0}); err == nil {
		t.Fatal("parity change not reported")
	}
	a.ResetState([]int64{1, 1, 0, 0})
	if err := a.Observe(1, []int64{0, 0, 0, 0}); err == nil {
		t.Fatal("extinction not reported")
	}
	a.ResetState([]int64{1, 1, 1, 0})
	if err := a.Observe(1, []int64{1, 0, 0, 0}); err != nil {
		t.Fatalf("legal annihilation reported: %v", err)
	}
}

func TestMajorityStepAllocs(t *testing.T) {
	m, err := NewMajority(64, 1).New(opinions(64, 40), 0)
	if err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("majority Step allocates: %v allocs/op", allocs)
	}
}

func TestHermanStepAllocs(t *testing.T) {
	m, err := NewHerman(1).New(tokenRing(64, 9), 0)
	if err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("herman Step allocates: %v allocs/op", allocs)
	}
}
