package protocol

import (
	"fmt"
	"runtime"

	"detlb/internal/core"
)

var (
	_ core.ModelBuilder = (*HermanBuilder)(nil)
	_ core.Model        = (*Herman)(nil)
)

// HermanBuilder constructs Herman self-stabilization machines with a fixed
// coin seed. The protocol runs on the node-index ring i → (i+1) mod n — the
// classical setting — regardless of the scenario's graph, which contributes
// only the node count (and metadata labels).
type HermanBuilder struct {
	seed uint64
}

// NewHerman returns a builder for Herman's self-stabilizing token
// circulation: state 1 means the node holds a token; each round every token
// flips a seeded coin to stay or move one step clockwise, and two tokens
// landing on the same node annihilate. From any odd number of tokens the
// ring converges to exactly one circulating token — the stabilized
// mutual-exclusion regime.
func NewHerman(seed uint64) *HermanBuilder { return &HermanBuilder{seed: seed} }

// Name identifies the builder: "herman(seed=s)".
func (hb *HermanBuilder) Name() string { return fmt.Sprintf("herman(seed=%d)", hb.seed) }

// DefaultHorizon returns 8n², a generous multiple of the protocol's O(n²)
// expected stabilization time (the Herman-protocol conjecture territory:
// worst-case expectation ≈ 0.148 n² from three equidistant tokens).
func (hb *HermanBuilder) DefaultHorizon(n int) int { return 8 * n * n }

// New builds a machine initialized with a copy of x1: entries must be 0 or 1
// and the token count must be odd (even counts can annihilate to zero tokens,
// which the protocol never recovers from — odd configurations are the
// protocol's legal space, and the TokenAuditor pins the parity). workers
// sizes the machine's kernel; rounds are two data-parallel phases and
// bit-identical at every width.
func (hb *HermanBuilder) New(x1 []int64, workers int) (core.Model, error) {
	n := len(x1)
	if n == 0 {
		return nil, fmt.Errorf("protocol: herman needs a non-empty ring")
	}
	var tokens int64
	for u, v := range x1 {
		if v != 0 && v != 1 {
			return nil, badState("herman", u, v, "0 or 1")
		}
		tokens += v
	}
	if tokens%2 == 0 {
		return nil, fmt.Errorf("protocol: herman needs an odd token count, got %d", tokens)
	}
	m := &Herman{
		state:    append([]int64(nil), x1...),
		keep:     make([]int64, n),
		pass:     make([]int64, n),
		n:        n,
		seed:     hb.seed,
		kern:     core.NewKernel(workers),
		auditors: []Auditor{NewTokenAuditor()},
	}
	if m.kern.Width() > 1 {
		runtime.AddCleanup(m, func(k *core.Kernel) { k.Close() }, m.kern)
	}
	m.flip = m.flipPhase
	m.merge = m.mergePhase
	for _, a := range m.auditors {
		a.ResetState(m.state)
	}
	return m, nil
}

// Herman is the synchronous, seeded-coin variant of Herman's self-stabilizing
// token ring. One round is two kernel phases: every token-holding node flips
// a coin derived from (seed, round, node) and decides keep-or-pass; after the
// barrier every node XORs its kept token with its predecessor's passed one,
// so two tokens meeting annihilate. Token-count parity is conserved and the
// count is monotone non-increasing, so an odd start converges to one token.
type Herman struct {
	state []int64 // 1 = node holds a token
	keep  []int64 // phase-1 scratch: token staying at i
	pass  []int64 // phase-1 scratch: token leaving i clockwise
	n     int
	seed  uint64
	round int

	kern     *core.Kernel
	auditors []Auditor

	// flip and merge are the two phase closures, bound once at construction
	// so Step allocates nothing.
	flip, merge func(lo, hi int)
}

// N returns the ring size.
func (m *Herman) N() int { return m.n }

// State returns the current token vector. Shared; do not modify.
func (m *Herman) State() []int64 { return m.state }

// Round returns the number of completed rounds.
func (m *Herman) Round() int { return m.round }

// flipPhase decides keep-or-pass for every token on [lo, hi). The coin for
// node i in round r hashes the global counter r·n + i, so the schedule is a
// pure function of (seed, round, node) — independent of chunking.
func (m *Herman) flipPhase(lo, hi int) {
	round := uint64(m.round)
	n := uint64(m.n)
	for i := lo; i < hi; i++ {
		if m.state[i] == 0 {
			m.keep[i], m.pass[i] = 0, 0
			continue
		}
		h := splitmix64(m.seed ^ (round*n+uint64(i)+1)*gamma)
		if h&1 == 1 {
			m.keep[i], m.pass[i] = 0, 1
		} else {
			m.keep[i], m.pass[i] = 1, 0
		}
	}
}

// mergePhase combines kept tokens with the predecessor's passed ones on
// [lo, hi). XOR is the annihilation rule: a kept token meeting an arriving
// one destroys both. Reads only phase-1 results, whose completeness the
// kernel's round barrier guarantees.
func (m *Herman) mergePhase(lo, hi int) {
	for i := lo; i < hi; i++ {
		prev := i - 1
		if prev < 0 {
			prev = m.n - 1
		}
		m.state[i] = m.keep[i] ^ m.pass[prev]
	}
}

// Step executes one synchronous round: one fused kernel dispatch (flip,
// barrier, merge), then the invariant auditors. Zero allocations.
//
//detcheck:noalloc
func (m *Herman) Step() error {
	m.round++
	m.kern.RunRound(m.n, m.flip, m.merge)
	for _, a := range m.auditors {
		if err := a.Observe(m.round, m.state); err != nil {
			//detcheck:allow hotalloc cold error path; an auditor violation already aborts the run
			return fmt.Errorf("protocol: round %d: %w", m.round, err)
		}
	}
	return nil
}

// Reset rewinds the machine to round zero with a new token vector (same
// validity rules as New), reusing the kernel and scratch arrays and
// re-arming the auditors; the trajectory afterwards is bit-identical to a
// fresh machine's.
func (m *Herman) Reset(x1 []int64) error {
	if len(x1) != m.n {
		return fmt.Errorf("protocol: herman reset vector has %d entries for %d nodes", len(x1), m.n)
	}
	var tokens int64
	for u, v := range x1 {
		if v != 0 && v != 1 {
			return badState("herman", u, v, "0 or 1")
		}
		tokens += v
	}
	if tokens%2 == 0 {
		return fmt.Errorf("protocol: herman reset needs an odd token count, got %d", tokens)
	}
	copy(m.state, x1)
	m.round = 0
	for _, a := range m.auditors {
		a.ResetState(m.state)
	}
	return nil
}

// ApplyDelta is unsupported: injecting tokens mid-run would break the parity
// invariant the protocol's stabilization proof rests on.
func (m *Herman) ApplyDelta(delta []int64) error {
	return fmt.Errorf("protocol: herman has no load-injection semantics")
}

// Close releases the machine's kernel; idempotent.
func (m *Herman) Close() { m.kern.Close() }

// TokenAuditor pins Herman's conservation laws: the token count never
// increases, changes only in pairs (annihilation), and never reaches zero
// from a legal (odd) start. Violation means the flip/merge phases raced or
// the coin schedule drifted.
type TokenAuditor struct {
	count int64
}

// NewTokenAuditor returns an un-armed token auditor; ResetState arms it.
func NewTokenAuditor() *TokenAuditor { return &TokenAuditor{} }

// ResetState records the token count of a fresh run.
func (a *TokenAuditor) ResetState(state []int64) { a.count = TokenCount(state) }

// Observe fails on any count increase, parity change, or extinction, then
// tracks the (possibly decreased) count for the next round.
func (a *TokenAuditor) Observe(round int, state []int64) error {
	got := TokenCount(state)
	switch {
	case got > a.count:
		return fmt.Errorf("herman token count increased: %d -> %d", a.count, got)
	case (a.count-got)%2 != 0:
		return fmt.Errorf("herman token parity changed: %d -> %d", a.count, got)
	case got < 1:
		return fmt.Errorf("herman tokens extinct: %d -> %d", a.count, got)
	}
	a.count = got
	return nil
}

// TokenCount returns the number of token-holding nodes.
func TokenCount(state []int64) int64 {
	var c int64
	for _, v := range state {
		if v != 0 {
			c++
		}
	}
	return c
}

// Tokens is the Herman convergence metric: the surviving-token count. It
// reaches 1 exactly at stabilization, making TargetDiscrepancy = 1 the
// time-to-stabilization analogue of the diffusion target.
var Tokens core.Metric = tokensMetric{}

type tokensMetric struct{}

func (tokensMetric) Name() string { return "tokens" }

func (tokensMetric) Measure(state []int64) int64 { return TokenCount(state) }
