package protocol

import (
	"fmt"

	"detlb/internal/core"
)

// Four-state exact-majority encoding: each agent holds a signed opinion with
// a strength bit. Strong agents still carry their original vote; weak agents
// have met the opposition and merely lean. The signed values make the vector
// directly reusable as a diffusion load vector (the majority-vs-rotor preset
// runs the same ±2 vector through both model families).
const (
	StrongA int64 = 2  // strong positive opinion
	WeakA   int64 = 1  // weak positive opinion
	WeakB   int64 = -1 // weak negative opinion
	StrongB int64 = -2 // strong negative opinion
)

var (
	_ core.ModelBuilder = (*MajorityBuilder)(nil)
	_ core.Model        = (*Majority)(nil)
)

// MajorityBuilder constructs four-state exact-majority machines for a fixed
// population size and scheduler seed. One builder value is the unit of sweep
// grouping: specs sharing it reuse a single machine via Reset.
type MajorityBuilder struct {
	n    int
	seed uint64
}

// NewMajority returns a builder for the four-state exact-majority protocol on
// a well-mixed population of n agents: the scheduler draws uniform random
// ordered pairs, the classical complete-interaction-graph setting of the
// population-protocol literature. (Restricting interactions to a sparse
// graph's edges makes exact majority non-convergent — two surviving strong
// opposites with no edge between them can never cancel — so the scenario
// graph contributes the agent count and metadata, not the interaction
// topology, exactly as it does for Herman's ring.)
func NewMajority(n int, seed uint64) *MajorityBuilder {
	if n < 2 {
		panic(fmt.Sprintf("protocol: majority needs at least 2 agents, got %d", n))
	}
	return &MajorityBuilder{n: n, seed: seed}
}

// Name identifies the builder: "majority(seed=s)".
func (mb *MajorityBuilder) Name() string { return fmt.Sprintf("majority(seed=%d)", mb.seed) }

// DefaultHorizon returns 8n rounds (= 8n² pairwise interactions), a generous
// cap for the O(n log n)-interaction typical case; close margins are governed
// by Patience/Target rather than the horizon.
func (mb *MajorityBuilder) DefaultHorizon(n int) int { return 8 * n }

// New builds a machine initialized with a copy of x1 (entries must be one of
// ±1, ±2). workers is ignored: one round is n sequential pairwise
// interactions — interaction k+1 reads interaction k's writes — so the
// machine is inherently serial and trivially bit-identical across worker
// counts.
func (mb *MajorityBuilder) New(x1 []int64, workers int) (core.Model, error) {
	if len(x1) != mb.n {
		return nil, fmt.Errorf("protocol: majority state vector has %d entries for %d nodes", len(x1), mb.n)
	}
	if err := validateOpinions(x1); err != nil {
		return nil, err
	}
	m := &Majority{
		state:    append([]int64(nil), x1...),
		n:        mb.n,
		seed:     mb.seed,
		auditors: []Auditor{NewMarginAuditor()},
	}
	for _, a := range m.auditors {
		a.ResetState(m.state)
	}
	return m, nil
}

func validateOpinions(x []int64) error {
	for u, v := range x {
		switch v {
		case StrongA, WeakA, WeakB, StrongB:
		default:
			return badState("majority", u, v, "±1 or ±2")
		}
	}
	return nil
}

// Majority is the four-state exact-majority machine of the log-time majority
// line of work: strong opposite opinions cancel to weak ones, strong
// opinions convert opposite weak ones, and the conserved margin
// #StrongA − #StrongB decides the outcome — the protocol computes the exact
// initial majority, not an approximation. One synchronous round is n
// pairwise interactions drawn by the seeded SplitMix64 scheduler.
type Majority struct {
	state    []int64
	n        int
	seed     uint64
	round    int
	auditors []Auditor
}

// N returns the number of agents.
func (m *Majority) N() int { return m.n }

// State returns the current opinion vector. Shared; do not modify.
func (m *Majority) State() []int64 { return m.state }

// Round returns the number of completed rounds.
func (m *Majority) Round() int { return m.round }

// Step executes one round: n pairwise interactions. Interaction g (a global
// counter, so trajectories are a pure function of (x1, seed)) hashes to one
// 64-bit word; the low bits pick the initiator u, the high bits pick the
// responder uniformly among the other n−1 agents. Zero allocations.
//
//detcheck:noalloc
func (m *Majority) Step() error {
	m.round++
	n := uint64(m.n)
	base := uint64(m.round-1) * n
	for k := uint64(0); k < n; k++ {
		h := splitmix64(m.seed ^ (base+k+1)*gamma)
		u := int(h % n)
		v := int((uint64(u) + 1 + (h>>32)%(n-1)) % n)
		m.state[u], m.state[v] = interact(m.state[u], m.state[v])
	}
	for _, a := range m.auditors {
		if err := a.Observe(m.round, m.state); err != nil {
			//detcheck:allow hotalloc cold error path; an auditor violation already aborts the run
			return fmt.Errorf("protocol: round %d: %w", m.round, err)
		}
	}
	return nil
}

// interact is the four-state transition table: strong–strong opposites cancel
// to their weak forms; a strong agent converts an opposite weak one to its
// own weak sign; every other pairing is a no-op. The margin
// #StrongA − #StrongB is invariant under all six rules.
func interact(a, b int64) (int64, int64) {
	switch {
	case a == StrongA && b == StrongB:
		return WeakA, WeakB
	case a == StrongB && b == StrongA:
		return WeakB, WeakA
	case a == StrongA && b == WeakB:
		return a, WeakA
	case a == StrongB && b == WeakA:
		return a, WeakB
	case a == WeakB && b == StrongA:
		return WeakA, b
	case a == WeakA && b == StrongB:
		return WeakB, b
	}
	return a, b
}

// Reset rewinds the machine to round zero with a new opinion vector, reusing
// every allocation and re-arming the auditors; the trajectory afterwards is
// bit-identical to a fresh machine's.
func (m *Majority) Reset(x1 []int64) error {
	if len(x1) != m.n {
		return fmt.Errorf("protocol: majority reset vector has %d entries for %d nodes", len(x1), m.n)
	}
	if err := validateOpinions(x1); err != nil {
		return err
	}
	copy(m.state, x1)
	m.round = 0
	for _, a := range m.auditors {
		a.ResetState(m.state)
	}
	return nil
}

// ApplyDelta is unsupported: adding to an opinion encoding has no protocol
// meaning (it would silently manufacture or destroy votes).
func (m *Majority) ApplyDelta(delta []int64) error {
	return fmt.Errorf("protocol: majority has no load-injection semantics")
}

// Close is a no-op; the machine owns no worker pool.
func (m *Majority) Close() {}

// MarginAuditor pins the exact-majority conservation law: the margin
// #StrongA − #StrongB never changes, because strong opinions are only ever
// destroyed in opposite pairs. A violated margin means the transition table
// (or the scheduler feeding it) is broken.
type MarginAuditor struct {
	margin int64
}

// NewMarginAuditor returns an un-armed margin auditor; ResetState arms it.
func NewMarginAuditor() *MarginAuditor { return &MarginAuditor{} }

// ResetState records the initial margin of a fresh run.
func (a *MarginAuditor) ResetState(state []int64) { a.margin = Margin(state) }

// Observe fails if the margin moved.
func (a *MarginAuditor) Observe(round int, state []int64) error {
	if got := Margin(state); got != a.margin {
		return fmt.Errorf("majority margin not conserved: %d -> %d", a.margin, got)
	}
	return nil
}

// Margin returns #StrongA − #StrongB, the conserved quantity whose sign is
// the exact initial majority.
func Margin(state []int64) int64 {
	var m int64
	for _, v := range state {
		switch v {
		case StrongA:
			m++
		case StrongB:
			m--
		}
	}
	return m
}

// Unconverged is the majority convergence metric: the number of agents still
// holding the minority sign (min(#positive, #negative)). It reaches 0 exactly
// at consensus, making TargetDiscrepancy = 0 the time-to-consensus analogue
// of the diffusion target.
var Unconverged core.Metric = unconvergedMetric{}

type unconvergedMetric struct{}

func (unconvergedMetric) Name() string { return "unconverged" }

func (unconvergedMetric) Measure(state []int64) int64 {
	var pos, neg int64
	for _, v := range state {
		if v > 0 {
			pos++
		} else if v < 0 {
			neg++
		}
	}
	if pos < neg {
		return pos
	}
	return neg
}
