// Package protocol implements population-protocol dynamics as a second
// first-class model family on the core simulation kernel: the same flat
// per-node int64 state, deterministic synchronous rounds, and bit-identical
// results at every worker count that the token-diffusion engine provides —
// but the per-round transition is pairwise agent interaction (majority
// dynamics) or ring token circulation (Herman's self-stabilization) instead
// of load diffusion.
//
// Determinism: population protocols are probabilistic on paper (a uniformly
// random scheduler picks the interacting pair). Here every random choice is
// derived by hashing a (seed, interaction counter) pair through the
// SplitMix64 finalizer, so a machine's trajectory is a pure function of
// (initial state, seed) — replayable, archivable, and bit-identical across
// Run/Sweep/Stream and worker counts, exactly like the diffusion engine's
// rounds. Changing the seed selects a different but equally valid schedule.
//
// Each machine ships with conservation-style invariant auditors (opinion
// margin for majority, token count/parity for Herman) that run after every
// round, mirroring the core engine's Auditor discipline.
package protocol

import "fmt"

// gamma is the golden-ratio increment 2⁶⁴/φ, the standard SplitMix64 stream
// constant; the scheduler hashes seed ^ counter·gamma so consecutive
// interaction counters land in unrelated parts of the mixer's domain.
const gamma = 0x9e3779b97f4a7c15

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mixer, the
// standard choice for turning a counter into high-quality pseudorandom bits
// without any carried state. (Same mixer as the workload and topology
// schedules — kept local so the protocol layer has no dependency on them.)
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Auditor checks a protocol invariant after every completed round. Auditors
// carry per-run state (the conserved quantity they pin); ResetState re-arms
// them, which is what lets a sweep reuse one machine across many runs.
type Auditor interface {
	// ResetState re-arms the auditor for a fresh run starting from state.
	ResetState(state []int64)

	// Observe checks the invariant after round round. A non-nil error fails
	// the machine's Step.
	Observe(round int, state []int64) error
}

// badState formats a package-style error for an illegal state value at a
// node, naming the model whose encoding was violated.
func badState(model string, node int, v int64, want string) error {
	return fmt.Errorf("protocol: %s state %d at node %d; want %s", model, v, node, want)
}
