package detlb_test

// Determinism regression tests for the engine's bit-identical-to-serial
// contract: the load trajectory of any run must be a pure function of
// (graph, balancer, initial vector), independent of the worker count, the
// chunk partition, and the distribute fast path taken. These tests pin the
// contract the parallel apply phase, the persistent worker pool, and the
// compressed bulk distributors all rely on.

import (
	"fmt"
	"runtime"
	"testing"

	"detlb"
)

// runTrajectory executes rounds and records every intermediate load vector.
func runTrajectory(t *testing.T, eng *detlb.Engine, rounds int) [][]int64 {
	t.Helper()
	traj := make([][]int64, 0, rounds)
	for r := 0; r < rounds; r++ {
		if err := eng.Step(); err != nil {
			t.Fatalf("round %d: %v", r+1, err)
		}
		traj = append(traj, append([]int64(nil), eng.Loads()...))
	}
	return traj
}

func compareTrajectories(t *testing.T, name string, want, got [][]int64) {
	t.Helper()
	for r := range want {
		for u := range want[r] {
			if want[r][u] != got[r][u] {
				t.Fatalf("%s: round %d node %d: load %d, want %d (first divergence)",
					name, r+1, u, got[r][u], want[r][u])
			}
		}
	}
}

// TestDeterminismAcrossWorkers asserts load vectors are bit-identical across
// WithWorkers(0/1/2/8) for rotor-router and SEND(⌊x/d⁺⌋) over 120 rounds on
// an expander and a cycle. GOMAXPROCS is raised so the worker pool actually
// engages even on single-CPU machines (the engine clamps pool width to
// GOMAXPROCS).
func TestDeterminismAcrossWorkers(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))

	const rounds = 120
	graphs := []*detlb.Graph{
		detlb.RandomRegular(128, 8, 3),
		detlb.Cycle(97),
	}
	algos := []struct {
		name string
		make func() detlb.Balancer
	}{
		{"rotor-router", func() detlb.Balancer { return detlb.NewRotorRouter() }},
		{"send-floor", func() detlb.Balancer { return detlb.NewSendFloor() }},
	}

	for _, g := range graphs {
		for _, algo := range algos {
			t.Run(fmt.Sprintf("%s/%s", g.Name(), algo.name), func(t *testing.T) {
				bg := detlb.Lazy(g)
				x1 := detlb.PointMass(g.N(), 0, int64(31*g.N())+11)

				ref := runTrajectory(t, detlb.MustEngine(bg, algo.make(), x1, detlb.WithWorkers(0)), rounds)
				for _, workers := range []int{1, 2, 8} {
					eng := detlb.MustEngine(bg, algo.make(), x1, detlb.WithWorkers(workers))
					got := runTrajectory(t, eng, rounds)
					compareTrajectories(t, fmt.Sprintf("workers=%d", workers), ref, got)
					eng.Close()
				}
			})
		}
	}
}

// TestDeterminismAcrossReset asserts that an engine rewound with Reset
// reproduces a fresh engine's trajectory bit-for-bit, for stateful (rotor)
// and stateless (send-floor) balancers, serial and pooled engines — the
// property the sweep harness's engine reuse rests on. The reset engine is
// deliberately dirtied with a different vector first so stale rotor
// positions or loads would show.
func TestDeterminismAcrossReset(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))

	const rounds = 120
	g := detlb.RandomRegular(128, 8, 3)
	algos := []struct {
		name string
		make func() detlb.Balancer
	}{
		{"rotor-router", func() detlb.Balancer { return detlb.NewRotorRouter() }},
		{"send-floor", func() detlb.Balancer { return detlb.NewSendFloor() }},
	}

	for _, algo := range algos {
		for _, workers := range []int{0, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", algo.name, workers), func(t *testing.T) {
				bg := detlb.Lazy(g)
				x1 := detlb.PointMass(g.N(), 0, int64(31*g.N())+11)
				warmup := detlb.PointMass(g.N(), 5, int64(7*g.N())+3)

				fresh := detlb.MustEngine(bg, algo.make(), x1, detlb.WithWorkers(workers))
				defer fresh.Close()
				ref := runTrajectory(t, fresh, rounds)

				reused := detlb.MustEngine(bg, algo.make(), warmup, detlb.WithWorkers(workers))
				defer reused.Close()
				runTrajectory(t, reused, 37) // dirty the bound state
				if err := reused.Reset(x1); err != nil {
					t.Fatal(err)
				}
				got := runTrajectory(t, reused, rounds)
				compareTrajectories(t, "reset vs fresh", ref, got)
			})
		}
	}
}

// TestDeterminismAcrossDistributePaths asserts the compressed bulk fast path
// and the per-node NodeBalancer path produce identical trajectories.
// Attaching an auditor that requires per-self-loop assignments forces the
// engine onto the per-node path, so the two engines below exercise the two
// distribute implementations of the same algorithm.
func TestDeterminismAcrossDistributePaths(t *testing.T) {
	const rounds = 120
	g := detlb.RandomRegular(96, 8, 7)
	bg := detlb.Lazy(g)
	x1 := detlb.PointMass(g.N(), 0, int64(17*g.N())+5)

	bulk := runTrajectory(t, detlb.MustEngine(bg, detlb.NewRotorRouter(), x1), rounds)
	perNode := runTrajectory(t,
		detlb.MustEngine(bg, detlb.NewRotorRouter(), x1, detlb.WithAuditor(detlb.NewRoundFairAuditor())), rounds)
	compareTrajectories(t, "per-node vs bulk", bulk, perNode)
}
