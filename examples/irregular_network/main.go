// Irregular network: the paper's non-regular extension in action. An
// edge-datacenter topology — one high-degree aggregation hub, mid-degree
// racks, degree-1 leaf devices — balances a burst of work with the
// degree-aware rotor-router. The fixed point is not the uniform load but the
// degree-proportional fair share m·d⁺(u)/Σd⁺, and the run converges to it.
package main

import (
	"fmt"

	"detlb"
)

func main() {
	// Topology: hub 0 connects to 6 racks; each rack connects to 4 leaves.
	const racks, leavesPerRack = 6, 4
	n := 1 + racks + racks*leavesPerRack
	adj := make([][]int, n)
	link := func(u, v int) {
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	for r := 0; r < racks; r++ {
		rack := 1 + r
		link(0, rack)
		for l := 0; l < leavesPerRack; l++ {
			leaf := 1 + racks + r*leavesPerRack + l
			link(rack, leaf)
		}
	}
	g, err := detlb.NewIrregularGraph("edge-dc", adj)
	if err != nil {
		panic(err)
	}
	b := detlb.IrregularLazy(g)
	fmt.Printf("edge datacenter: %d nodes; hub degree %d, rack degree %d, leaf degree %d\n",
		g.N(), g.Degree(0), g.Degree(1), g.Degree(n-1))

	// A burst of 9001 work items lands on a single leaf device.
	x1 := make([]int64, n)
	x1[n-1] = 9001
	eng, err := detlb.NewIrregularEngine(b, detlb.IrregularRotorRouter{}, x1)
	if err != nil {
		panic(err)
	}
	target := b.FairShare(9001)
	fmt.Printf("fair share: hub %.1f, rack %.1f, leaf %.1f (degree-proportional)\n",
		target[0], target[1], target[n-1])

	for round := 1; round <= 6000; round++ {
		eng.Step()
		if round%1000 == 0 {
			fmt.Printf("round %5d: max deviation from fair share %.1f, relative discrepancy %.2f\n",
				round, b.DeviationFromFairShare(eng.Loads()), b.RelativeDiscrepancy(eng.Loads()))
		}
	}
	fmt.Printf("\nfinal loads: hub %d, rack[0] %d, leaf[last] %d (conserved total %d)\n",
		eng.Loads()[0], eng.Loads()[1], eng.Loads()[n-1], eng.TotalLoad())
	fmt.Println("the spread per unit of degree — the irregular analogue of the paper's")
	fmt.Println("discrepancy — has collapsed to O(1), matching the regular-case theorems.")
}
