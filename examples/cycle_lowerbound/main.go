// Cycle lower bounds: why self-loops and cumulative fairness both matter.
//
// This program demonstrates the two failure modes of Section 4 on cycles:
//
//  1. Theorem 4.3 — the plain rotor-router WITHOUT self-loops (d⁺ = d) on an
//     odd cycle, started from the paper's adversarial rotor/load state, locks
//     into a period-2 orbit whose discrepancy is Θ(n) forever;
//  2. the SAME algorithm with d self-loops (the paper's setting) balances the
//     same total load down to O(d·√n) — Theorem 2.3(ii).
//
// Then it shows Theorem 4.1's frozen round-fair flow on the same cycle.
package main

import (
	"fmt"
	"os"

	"detlb"
)

func main() {
	const n = 65
	g := detlb.Cycle(n)
	phi := g.Phi() // odd girth is n, so φ = (n−1)/2
	fmt.Printf("cycle(%d): odd girth %d, φ(G) = %d\n\n", n, g.OddGirth(), phi)

	// --- Theorem 4.3: rotor-router with d⁺ = d, adversarial initial state.
	rr, x1, err := detlb.RotorAlternatingInstance(g, int64(phi+4))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	noLoops := detlb.WithLoops(g, 0)
	eng := detlb.MustEngine(noLoops, rr, x1)
	fmt.Printf("rotor-router, no self-loops: initial discrepancy %d\n", eng.Discrepancy())
	minDisc := eng.Discrepancy()
	for i := 0; i < 1000; i++ {
		if err := eng.Step(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if d := eng.Discrepancy(); d < minDisc {
			minDisc = d
		}
	}
	fmt.Printf("after 1000 rounds: discrepancy %d (best ever seen %d, lower bound d·φ = %d)\n\n",
		eng.Discrepancy(), minDisc, g.Degree()*phi)

	// --- Same tokens, same algorithm family, but with the paper's self-loops.
	lazy := detlb.Lazy(g)
	res := detlb.Run(detlb.RunSpec{
		Balancing: lazy,
		Algorithm: detlb.NewRotorRouter(),
		Initial:   x1,
		Patience:  16 * n,
	})
	fmt.Printf("rotor-router with d self-loops on the same workload:\n")
	fmt.Printf("discrepancy %d after %d rounds (Theorem 2.3(ii) scale d·sqrt(n) ≈ %.0f)\n\n",
		res.MinDiscrepancy, res.Rounds, 2.0*8.06)

	// --- Theorem 4.1: a round-fair balancer frozen at Θ(d·diam).
	flow, xSteady := detlb.SteadyFlowInstance(lazy)
	engSteady := detlb.MustEngine(lazy, flow, xSteady,
		detlb.WithAuditor(detlb.NewRoundFairAuditor()))
	before := engSteady.Discrepancy()
	for i := 0; i < 1000; i++ {
		if err := engSteady.Step(); err != nil {
			fmt.Fprintln(os.Stderr, "audit:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("steady round-fair flow (Thm 4.1): discrepancy %d before, %d after 1000 rounds\n",
		before, engSteady.Discrepancy())
	fmt.Printf("(d·diam = %d; every round passed the round-fairness audit)\n",
		g.Degree()*g.Diameter())
}
