// Expander sweep: the paper's headline improvement, as a user program.
//
// On good expanders the Rabani-Sinclair-Wanka framework guarantees only
// Θ(log n) discrepancy after T rounds, while cumulatively fair balancers
// achieve O(sqrt(log n)) (Theorem 2.3(i)). This program sweeps random
// d-regular graphs, runs a fair balancer and the biased in-class baseline to
// the paper's horizon, and prints both against the two theoretical scales.
package main

import (
	"fmt"
	"math"
	"os"

	"detlb"
)

func main() {
	const d = 8
	fmt.Println("n      µ       T     fair(send-floor)  rotor  biased  sqrt(ln n)  ln n")
	for _, n := range []int{128, 256, 512, 1024} {
		g := detlb.RandomRegular(n, d, 1)
		b := detlb.Lazy(g)
		x1 := detlb.PointMass(n, 0, int64(4*n)+7)

		fair := run(b, detlb.NewSendFloor(), x1)
		rotor := run(b, detlb.NewRotorRouter(), x1)
		biased := run(b, detlb.NewBiasedRounding(), x1)
		if fair.Err != nil || rotor.Err != nil || biased.Err != nil {
			fmt.Fprintln(os.Stderr, "run failed:", fair.Err, rotor.Err, biased.Err)
			os.Exit(1)
		}
		fmt.Printf("%-6d %.4f  %-5d %-17d %-6d %-7d %-11.2f %.2f\n",
			n, fair.Gap, fair.BalancingTime,
			fair.MinDiscrepancy, rotor.MinDiscrepancy, biased.MinDiscrepancy,
			math.Sqrt(math.Log(float64(n))), math.Log(float64(n)))
	}
	fmt.Println("\nexpected shape: fair/rotor columns stay near-constant (sqrt scale is tiny),")
	fmt.Println("biased column stays above them and grows with n (log-scale behaviour).")
}

func run(b *detlb.Balancing, algo detlb.Balancer, x1 []int64) detlb.RunResult {
	return detlb.Run(detlb.RunSpec{
		Balancing: b,
		Algorithm: algo,
		Initial:   x1,
		Patience:  16 * b.N(),
	})
}
