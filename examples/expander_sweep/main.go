// Expander sweep: the paper's headline improvement, as a user program.
//
// On good expanders the Rabani-Sinclair-Wanka framework guarantees only
// Θ(log n) discrepancy after T rounds, while cumulatively fair balancers
// achieve O(sqrt(log n)) (Theorem 2.3(i)). This program sweeps random
// d-regular graphs, runs a fair balancer and the biased in-class baseline to
// the paper's horizon, and prints both against the two theoretical scales.
//
// With -sweep the whole n × algorithm grid is built as one spec list and
// executed by the concurrent sweep harness (detlb.Sweep): engines are reused
// per (graph, algorithm) pair, the spectral gap is computed once per graph,
// and the per-spec results are bit-identical to the serial loop the default
// mode runs.
//
// The grid itself is declared through the scenario layer: each cell is a
// pure-data detlb.Scenario (graph family + algorithm + workload descriptors)
// and detlb.BindScenarios wires the live specs, sharing one balancing graph
// per size and one algorithm instance per (size, algorithm) pair — the same
// description that could be saved to, or loaded from, a scenario JSON file.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"detlb"
)

const d = 8

var sizes = []int{128, 256, 512, 1024}

var algos = []string{"send-floor", "rotor-router", "biased"}

func main() {
	useSweep := flag.Bool("sweep", false, "run the grid through the concurrent sweep harness")
	flag.Parse()

	var cells []detlb.Scenario
	for _, n := range sizes {
		for _, algo := range algos {
			cells = append(cells, detlb.Scenario{
				Graph:    detlb.GraphSpec{Kind: "random", Args: []int64{int64(n), d, 1}},
				Algo:     detlb.AlgoSpec{Kind: algo},
				Workload: detlb.WorkloadSpec{Kind: "point", Args: []int64{int64(4*n) + 7}},
				Run:      detlb.RunParams{Patience: 16 * n},
			})
		}
	}
	specs, err := detlb.BindScenarios(cells)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bind failed:", err)
		os.Exit(1)
	}

	start := time.Now()
	var results []detlb.RunResult
	if *useSweep {
		results = detlb.Sweep(specs, detlb.SweepOptions{})
	} else {
		results = make([]detlb.RunResult, len(specs))
		for i, spec := range specs {
			results[i] = detlb.Run(spec)
		}
	}
	elapsed := time.Since(start)

	fmt.Println("n      µ       T     fair(send-floor)  rotor  biased  sqrt(ln n)  ln n")
	for i, n := range sizes {
		fair, rotor, biased := results[3*i], results[3*i+1], results[3*i+2]
		if fair.Err != nil || rotor.Err != nil || biased.Err != nil {
			fmt.Fprintln(os.Stderr, "run failed:", fair.Err, rotor.Err, biased.Err)
			os.Exit(1)
		}
		fmt.Printf("%-6d %.4f  %-5d %-17d %-6d %-7d %-11.2f %.2f\n",
			n, fair.Gap, fair.BalancingTime,
			fair.MinDiscrepancy, rotor.MinDiscrepancy, biased.MinDiscrepancy,
			math.Sqrt(math.Log(float64(n))), math.Log(float64(n)))
	}
	mode := "serial loop"
	if *useSweep {
		mode = "concurrent sweep"
	}
	fmt.Printf("\n%d runs in %v (%s)\n", len(specs), elapsed.Round(time.Millisecond), mode)
	fmt.Println("expected shape: fair/rotor columns stay near-constant (sqrt scale is tiny),")
	fmt.Println("biased column stays above them and grows with n (log-scale behaviour).")
}
