// Cluster scheduler: the paper's motivating scenario — indivisible work
// items (container tasks) balanced across a datacenter-style network with no
// central coordinator, no communication beyond token transfer, and no shared
// state.
//
// The "datacenter" is a 3-dimensional torus (a common switchless topology).
// Bursty job arrivals land on a handful of ingress nodes every epoch; between
// epochs the SEND([x/d⁺]) balancer — deterministic, stateless, never
// oversubscribes a link — spreads the tasks. The program reports per-epoch
// tail load versus the ideal, showing the scheduler holds the paper's O(d)
// discrepancy even under repeated load injection.
package main

import (
	"fmt"
	"math/rand"

	"detlb"
)

func main() {
	const (
		side   = 8
		epochs = 6
		burst  = 4096
	)
	g := detlb.Torus(3, side) // 512 machines, degree 6
	b := detlb.Lazy(g)
	n := g.N()
	fmt.Printf("datacenter: %s, %d machines, degree %d, diameter %d\n",
		g.Name(), n, g.Degree(), g.Diameter())

	loads := make([]int64, n)
	rng := rand.New(rand.NewSource(7))
	algo := detlb.NewSendRound()

	var carried int64
	for epoch := 1; epoch <= epochs; epoch++ {
		// A burst of tasks arrives at a few random ingress machines.
		ingress := rng.Intn(8) + 2
		for i := 0; i < ingress; i++ {
			loads[rng.Intn(n)] += int64(burst / ingress)
		}
		carried += int64(burst / ingress * ingress)

		before := detlb.Discrepancy(loads)
		eng := detlb.MustEngine(b, algo, loads,
			detlb.WithAuditor(detlb.NewNonNegativeAuditor()))
		rounds := 0
		for eng.Discrepancy() > int64(2*g.Degree()) && rounds < 20000 {
			if err := eng.Step(); err != nil {
				panic(err)
			}
			rounds++
		}
		copy(loads, eng.Loads())
		fmt.Printf("epoch %d: +%5d tasks at %d ingress nodes | discrepancy %6d -> %3d in %5d rounds | max load %d (ideal %d)\n",
			epoch, burst/ingress*ingress, ingress, before, eng.Discrepancy(),
			rounds, maxOf(loads), carried/int64(n)+1)
	}
	fmt.Println("\nno machine ever saw more than ideal + O(d) tasks; no negative loads;")
	fmt.Println("every decision used only the machine's own task count (stateless, zero coordination).")
}

func maxOf(x []int64) int64 {
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
