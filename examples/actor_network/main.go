// Actor network: the same synchronous model of Section 1.3 executed as a
// real message-passing system — one goroutine per processor, tokens as
// channel messages, rounds as barriers — and cross-checked round by round
// against the deterministic engine.
package main

import (
	"fmt"
	"os"

	"detlb"
)

func main() {
	g := detlb.RandomRegular(256, 8, 3)
	b := detlb.Lazy(g)
	x1 := detlb.PointMass(g.N(), 0, 4099)
	fmt.Printf("spawning %d processor goroutines on %s\n", g.N(), g.Name())

	nw, err := detlb.NewActorNetwork(b, detlb.NewRotorRouterStar(), x1)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer nw.Close()

	// Reference engine running the identical algorithm.
	eng := detlb.MustEngine(b, detlb.NewRotorRouterStar(), x1)

	for round := 1; round <= 400; round++ {
		nw.Step()
		if err := eng.Step(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for u := range x1 {
			if nw.Loads()[u] != eng.Loads()[u] {
				fmt.Printf("DIVERGENCE at round %d node %d\n", round, u)
				os.Exit(1)
			}
		}
		if round%100 == 0 {
			fmt.Printf("round %3d: actor discrepancy %5d (engine agrees on all %d nodes)\n",
				round, nw.Discrepancy(), g.N())
		}
	}
	fmt.Printf("final discrepancy %d; %d goroutines exchanged %d token messages per round\n",
		nw.Discrepancy(), g.N(), g.N()*g.Degree())
}
