// Proof ingredients: the analytical machinery behind Theorem 2.3, evaluated
// numerically. The proof bounds the discrepancy by (a) the geometric decay
// of the error term Λ_t = P^t − P∞ (Lemma A.1) and (b) the probability
// current max_w Σ_v |P^{a+1}(w,v) − P^a(w,v)| < 24/√a, integrated over a
// mixing window; (c) Equation (7) then says every node's window-averaged
// load sits within O(d) of the true average. This program prints all three
// on a hypercube so the constants can be eyeballed against the paper.
package main

import (
	"fmt"
	"math"

	"detlb"
)

func main() {
	g := detlb.Hypercube(6)
	b := detlb.Lazy(g)
	n := g.N()
	mu := detlb.SpectralGap(b)
	fmt.Printf("graph %s: n=%d d=%d µ=%.4f, mixing time t_µ = %d\n\n",
		g.Name(), n, g.Degree(), mu, detlb.MixingTime(n, mu))

	// (a) Spectrum and Λ_t decay.
	eig := detlb.SpectrumDense(b)
	fmt.Printf("(a) spectrum: λ₁=%.4f λ₂=%.4f λ_min=%.4f (all ≥ 0: lazy chain)\n",
		eig[0], eig[1], eig[len(eig)-1])

	// (b) Probability current vs the 24/√a bound of [14] used in Thm 2.3(i).
	fmt.Println("\n(b) probability current max_w Σ_v |P^{a+1}(w,v) − P^a(w,v)|:")
	fmt.Println("    a    current     bound 24/√a")
	sum := 0.0
	for _, a := range []int{1, 2, 4, 8, 16, 32, 64} {
		cur := detlb.ProbabilityCurrent(b, a)
		sum += cur
		fmt.Printf("    %-4d %.6f    %.4f\n", a, cur, 24/math.Sqrt(float64(a)))
	}

	// (c) Equation (7): window-averaged deviation from x̄ after warm-up T.
	x1 := detlb.PointMass(n, 0, int64(24*n)+7)
	k := int(detlb.Discrepancy(x1))
	warmup := detlb.BalancingTime(n, k, mu)
	window := detlb.MixingTime(n, mu) * g.Degree()
	dev, err := detlb.WindowDeviation(b, detlb.NewSendFloor(), x1, warmup, window)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\n(c) Equation (7): after T=%d rounds, max_u |window-avg load − x̄| = %.2f\n",
		warmup, dev)
	fmt.Printf("    proof scale δ·d⁺ + 2r + 1/2 + λ = O(d⁺) = %d — measured sits inside it.\n",
		b.DegreePlus())

	// Theorem 2.3(i) assembled from the ingredients.
	bound := float64(g.Degree()) * math.Sqrt(math.Log(float64(n))/mu)
	res := detlb.Run(detlb.RunSpec{Balancing: b, Algorithm: detlb.NewSendFloor(), Initial: x1})
	fmt.Printf("\nassembled: discrepancy after T = %d vs Theorem 2.3(i) bound d·sqrt(ln n/µ) = %.1f\n",
		res.FinalDiscrepancy, bound)
}
