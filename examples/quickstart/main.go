// Quickstart: balance a point mass of tokens on a hypercube with the
// rotor-router and watch the discrepancy fall to O(d), with the paper's
// invariants audited live.
package main

import (
	"fmt"
	"math"

	"detlb"
)

func main() {
	// A 256-processor hypercube network; the balancing graph G+ adds d
	// self-loops per node (the paper's lazy default, d⁺ = 2d).
	g := detlb.Hypercube(8)
	b := detlb.Lazy(g)
	fmt.Printf("graph %s: n=%d d=%d d⁺=%d diameter=%d\n",
		g.Name(), g.N(), g.Degree(), b.DegreePlus(), g.Diameter())

	// Spectral data drives the paper's time horizon T = O(log(Kn)/µ).
	mu := detlb.SpectralGap(b)
	total := int64(20*g.N() + 11)
	x1 := detlb.PointMass(g.N(), 0, total)
	k := int(detlb.Discrepancy(x1))
	horizon := detlb.BalancingTime(g.N(), k, mu)
	fmt.Printf("eigenvalue gap µ=%.4f, initial discrepancy K=%d, horizon T=%d\n", mu, k, horizon)

	// Run the rotor-router with the paper's fairness definitions attached as
	// runtime auditors: any violation aborts the run.
	eng := detlb.MustEngine(b, detlb.NewRotorRouter(), x1,
		detlb.WithAuditor(detlb.NewConservationAuditor()),
		detlb.WithAuditor(detlb.NewNonNegativeAuditor()),
		detlb.WithAuditor(detlb.NewCumulativeFairnessAuditor(1)), // Obs 2.2: δ = 1
	)
	for round := 1; round <= horizon; round++ {
		if err := eng.Step(); err != nil {
			fmt.Println("audit failure:", err)
			return
		}
		if round%200 == 0 || round == horizon {
			fmt.Printf("round %5d: discrepancy %6d\n", round, eng.Discrepancy())
		}
		if eng.Discrepancy() <= int64(g.Degree()) {
			fmt.Printf("round %5d: reached O(d) discrepancy %d — done\n", round, eng.Discrepancy())
			break
		}
	}
	// Theorem 2.3(i): discrepancy O((δ+1)·d·sqrt(ln n / µ)) with δ = 1.
	bound := 2 * float64(g.Degree()) * math.Sqrt(math.Log(float64(g.N()))/mu)
	fmt.Printf("final discrepancy %d on %d tokens (Theorem 2.3(i) scale: %.0f)\n",
		eng.Discrepancy(), total, bound)
}
