package detlb_test

// Serving-tier benchmarks: the memoized run cache's headline numbers. The
// cache-hit path answers a POST of an archived fingerprint from one file
// read — no binding, no execution — so its latency must sit orders of
// magnitude below a cold execution of the same scenario; the sustained
// burst reports the hit-serving throughput as runs/sec. All three go over
// real HTTP (httptest) so the measured latency is what an lbserve client
// sees. scripts/bench.sh records them into BENCH_serve.json.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"detlb/internal/scenario"
	"detlb/internal/serve"
)

// benchServer boots a serving tier over httptest with the given cache mode.
func benchServer(b *testing.B, mode string) (*serve.Server, *httptest.Server) {
	b.Helper()
	srv, err := serve.New(serve.Config{ArchiveDir: b.TempDir(), CacheMode: mode})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	b.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// presetBody returns a preset's canonical scenario bytes.
func presetBody(b *testing.B, name string) []byte {
	b.Helper()
	fam, err := scenario.Preset(name)
	if err != nil {
		b.Fatal(err)
	}
	body, err := fam.Canonical()
	if err != nil {
		b.Fatal(err)
	}
	return body
}

// postTerminal POSTs a scenario and blocks until the run is terminal,
// returning its summary.
func postTerminal(b *testing.B, base string, body []byte) serve.RunSummary {
	b.Helper()
	sum := postOnce(b, base, body)
	resp, err := http.Get(base + "/v1/runs/" + sum.ID + "/result?wait=1")
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("result: %d", resp.StatusCode)
	}
	return sum
}

func postOnce(b *testing.B, base string, body []byte) serve.RunSummary {
	b.Helper()
	resp, err := http.Post(base+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		b.Fatalf("POST: %d: %s", resp.StatusCode, data)
	}
	var sum serve.RunSummary
	if err := json.Unmarshal(data, &sum); err != nil {
		b.Fatal(err)
	}
	return sum
}

// BenchmarkServeCacheHitExpander: POST-to-terminal latency of a cache hit on
// the expander-headline preset (9 cells, the paper's headline sweep). The
// archive is warmed once; every iteration is a full HTTP POST whose response
// is already the terminal hit.
func BenchmarkServeCacheHitExpander(b *testing.B) {
	_, ts := benchServer(b, serve.CacheOn)
	body := presetBody(b, "expander-headline")
	postTerminal(b, ts.URL, body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := postOnce(b, ts.URL, body)
		if sum.Status != serve.StatusDone || sum.Archive != "hit" {
			b.Fatalf("not a cache hit: %+v", sum)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "runs/sec")
}

// BenchmarkServeColdExpander: the same preset with the cache off — every
// iteration executes the full 9-cell sweep. The hit/cold ratio between this
// and BenchmarkServeCacheHitExpander is the memoization speedup.
func BenchmarkServeColdExpander(b *testing.B) {
	_, ts := benchServer(b, serve.CacheOff)
	body := presetBody(b, "expander-headline")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postTerminal(b, ts.URL, body)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "runs/sec")
}

// BenchmarkServeSustainedHitBurst: concurrent clients hammering a warmed
// 4-scenario mix — the sustained hit-serving throughput in runs/sec.
func BenchmarkServeSustainedHitBurst(b *testing.B) {
	_, ts := benchServer(b, serve.CacheOn)
	var bodies [][]byte
	for _, name := range []string{"expander-headline", "shock-recovery", "majority-vs-rotor", "link-failure-recovery"} {
		body := presetBody(b, name)
		postTerminal(b, ts.URL, body)
		bodies = append(bodies, body)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			sum := postOnce(b, ts.URL, bodies[i%len(bodies)])
			if sum.Status != serve.StatusDone {
				b.Fatalf("not terminal: %+v", sum)
			}
			i++
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "runs/sec")
}
