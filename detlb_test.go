package detlb_test

import (
	"testing"

	"detlb"
)

// TestFacadeEndToEnd exercises the public API exactly the way README's
// quickstart does.
func TestFacadeEndToEnd(t *testing.T) {
	g := detlb.Cycle(16)
	b := detlb.Lazy(g)
	x1 := detlb.PointMass(g.N(), 0, 1003)
	eng := detlb.MustEngine(b, detlb.NewRotorRouter(), x1,
		detlb.WithAuditor(detlb.NewConservationAuditor()),
		detlb.WithAuditor(detlb.NewCumulativeFairnessAuditor(1)),
	)
	for i := 0; i < 4000 && eng.Discrepancy() > 4; i++ {
		if err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Discrepancy() > 4 {
		t.Fatalf("discrepancy %d", eng.Discrepancy())
	}
	if eng.TotalLoad() != 1003 {
		t.Fatalf("total %d", eng.TotalLoad())
	}
}

func TestFacadeSpectral(t *testing.T) {
	b := detlb.Lazy(detlb.Hypercube(6))
	mu := detlb.SpectralGap(b)
	if mu <= 0 || mu >= 1 {
		t.Fatalf("µ = %v", mu)
	}
	if detlb.BalancingTime(b.N(), 100, mu) <= 0 {
		t.Fatal("T must be positive")
	}
}

func TestFacadeHarness(t *testing.T) {
	b := detlb.Lazy(detlb.Hypercube(5))
	res := detlb.Run(detlb.RunSpec{
		Balancing: b,
		Algorithm: detlb.NewSendRound(),
		Initial:   detlb.PointMass(b.N(), 0, 507),
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.FinalDiscrepancy > 4*int64(b.Degree()) {
		t.Fatalf("discrepancy %d", res.FinalDiscrepancy)
	}
}

func TestFacadeLowerBounds(t *testing.T) {
	if _, err := detlb.StatelessTrap(detlb.NewSendFloor(), 32, 8, 50); err != nil {
		t.Fatal(err)
	}
	g := detlb.Cycle(9)
	if _, _, err := detlb.RotorAlternatingInstance(g, 10); err != nil {
		t.Fatal(err)
	}
	fixedB := detlb.Lazy(detlb.Cycle(11))
	flow, x1 := detlb.SteadyFlowInstance(fixedB)
	if flow == nil || len(x1) != 11 {
		t.Fatal("steady flow construction broken")
	}
}

func TestFacadeActor(t *testing.T) {
	b := detlb.Lazy(detlb.Hypercube(4))
	nw, err := detlb.NewActorNetwork(b, detlb.NewGoodS(2), detlb.PointMass(16, 0, 643))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	nw.Run(300)
	if nw.Discrepancy() > 8 {
		t.Fatalf("actor discrepancy %d", nw.Discrepancy())
	}
}

func TestFacadePotentials(t *testing.T) {
	x := []int64{0, 10, 20}
	if detlb.Phi(x, 1, 4) != 6+16 {
		t.Fatalf("φ = %d", detlb.Phi(x, 1, 4))
	}
	if detlb.Discrepancy(x) != 20 {
		t.Fatal("discrepancy")
	}
	if detlb.Balancedness(x) != 10 {
		t.Fatalf("balancedness = %d", detlb.Balancedness(x))
	}
}

func TestFacadeIrregular(t *testing.T) {
	adj := [][]int{{1, 2, 3}, {0}, {0}, {0}}
	g, err := detlb.NewIrregularGraph("claw", adj)
	if err != nil {
		t.Fatal(err)
	}
	b := detlb.IrregularLazy(g)
	x1 := []int64{0, 0, 0, 120}
	eng, err := detlb.NewIrregularEngine(b, detlb.IrregularRotorRouter{}, x1)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(2000)
	if eng.TotalLoad() != 120 {
		t.Fatalf("total %d", eng.TotalLoad())
	}
	if rd := b.RelativeDiscrepancy(eng.Loads()); rd > 4 {
		t.Fatalf("relative discrepancy %v", rd)
	}
}

func TestFacadeWeighted(t *testing.T) {
	b := detlb.Lazy(detlb.Hypercube(4))
	eng, err := detlb.NewWeightedEngine(b, detlb.WeightedRotorDealer{},
		detlb.UniformTokens(16, 0, 500, 2))
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(800)
	if eng.TotalWeight() != 1000 {
		t.Fatalf("weight %d", eng.TotalWeight())
	}
	if eng.WeightDiscrepancy() > 16 {
		t.Fatalf("weight discrepancy %d", eng.WeightDiscrepancy())
	}
}
