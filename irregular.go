package detlb

import "detlb/internal/irregular"

// Non-regular extension (the paper: "our results can be extended to
// non-regular graphs"). On irregular graphs the diffusion's fixed point is
// the degree-proportional fair share m·d⁺(u)/Σd⁺ rather than the uniform
// load, and the discrepancy is measured per unit of degree.
type (
	// IrregularGraph is a symmetric graph with arbitrary per-node degrees.
	IrregularGraph = irregular.Graph
	// IrregularBalancing attaches per-node self-loop counts d°(u).
	IrregularBalancing = irregular.Balancing
	// IrregularEngine runs the synchronous process on irregular graphs.
	IrregularEngine = irregular.Engine
	// IrregularSendFloor is the degree-aware SEND(⌊x/d⁺(u)⌋).
	IrregularSendFloor = irregular.SendFloor
	// IrregularRotorRouter is the degree-aware rotor-router.
	IrregularRotorRouter = irregular.RotorRouter
)

var (
	// NewIrregularGraph validates an arbitrary symmetric adjacency list.
	NewIrregularGraph = irregular.New
	// IrregularLazy attaches d°(u) = d(u) self-loops per node.
	IrregularLazy = irregular.Lazy
	// IrregularWithLoops attaches explicit per-node self-loop counts.
	IrregularWithLoops = irregular.WithLoops
	// NewIrregularEngine binds an algorithm to an irregular balancing graph.
	NewIrregularEngine = irregular.NewEngine
	// NewIrregularContinuous runs the degree-weighted continuous diffusion.
	NewIrregularContinuous = irregular.NewContinuous
)
