package detlb_test

// Godoc examples: runnable documentation for the main public entry points.

import (
	"fmt"

	"detlb"
)

// Example shows the minimal balance-to-O(d) loop from the README.
func Example() {
	g := detlb.Cycle(16)
	b := detlb.Lazy(g)
	x1 := detlb.PointMass(g.N(), 0, 160)
	eng := detlb.MustEngine(b, detlb.NewRotorRouter(), x1)
	for eng.Discrepancy() > 2 {
		if err := eng.Step(); err != nil {
			panic(err)
		}
	}
	fmt.Println("balanced to discrepancy", eng.Discrepancy())
	// Output: balanced to discrepancy 2
}

// ExampleBalancingTime computes the paper's horizon T = ⌈16·ln(nK)/µ⌉.
func ExampleBalancingTime() {
	b := detlb.Lazy(detlb.Hypercube(4))
	mu := detlb.SpectralGap(b)
	fmt.Printf("µ = %.4f, T(K=256) = %d\n", mu, detlb.BalancingTime(b.N(), 256, mu))
	// Output: µ = 0.2500, T(K=256) = 533
}

// ExampleStatelessTrap demonstrates the Theorem 4.2 adversary pinning a
// stateless algorithm at Ω(d).
func ExampleStatelessTrap() {
	res, err := detlb.StatelessTrap(detlb.NewSendFloor(), 64, 16, 100)
	if err != nil {
		panic(err)
	}
	fmt.Printf("pinned discrepancy %d on degree %d\n", res.Discrepancy, 16)
	// Output: pinned discrepancy 7 on degree 16
}

// ExampleNewCumulativeFairnessAuditor audits Observation 2.2's δ = 0 for
// SEND(⌊x/d⁺⌋).
func ExampleNewCumulativeFairnessAuditor() {
	b := detlb.Lazy(detlb.Hypercube(4))
	fair := detlb.NewCumulativeFairnessAuditor(-1) // record only
	eng := detlb.MustEngine(b, detlb.NewSendFloor(),
		detlb.PointMass(b.N(), 0, 999), detlb.WithAuditor(fair))
	for i := 0; i < 200; i++ {
		if err := eng.Step(); err != nil {
			panic(err)
		}
	}
	fmt.Println("measured cumulative fairness δ =", fair.MaxDelta)
	// Output: measured cumulative fairness δ = 0
}

// ExamplePhi evaluates the Section 3 potential above a threshold.
func ExamplePhi() {
	loads := []int64{0, 5, 12, 20}
	fmt.Println(detlb.Phi(loads, 2, 4)) // tokens above height 2·d⁺ = 8
	// Output: 16
}

// ExampleRotorAlternatingInstance builds the Theorem 4.3 period-2 state.
func ExampleRotorAlternatingInstance() {
	g := detlb.Cycle(9)
	rr, x1, err := detlb.RotorAlternatingInstance(g, 10)
	if err != nil {
		panic(err)
	}
	eng := detlb.MustEngine(detlb.WithLoops(g, 0), rr, x1)
	d0 := eng.Discrepancy()
	_ = eng.Step()
	_ = eng.Step()
	fmt.Printf("φ(G)=%d, discrepancy %d, after two rounds %d (period 2)\n",
		g.Phi(), d0, eng.Discrepancy())
	// Output: φ(G)=4, discrepancy 15, after two rounds 15 (period 2)
}
